"""Whole-system integration: data flows through every substrate at once.

One parameter update travels the complete Figure-8 path with real data:

  FlatAdam updates the CPU master arena
    -> the cache hierarchy evicts dirty lines (write-back trace)
    -> the home agent applies the update protocol per line
    -> the Aggregator packs DBA payloads
    -> the CXL controller transports them in the discrete-event simulator
    -> the Disaggregator merges payloads into the device copy
    -> the reconstructed device parameters match the master within DBA's
       documented byte-truncation error, and hit exactly when updates are
       confined to the low bytes.

If any layer misorders, drops, or corrupts a line, the final comparison
fails — this is the test that ties the repository together.
"""

import numpy as np
import pytest

from repro.coherence import AddressMap, CoherenceMode, HomeAgent
from repro.dba import Aggregator, DBARegister, Disaggregator
from repro.interconnect import CacheLinePayload, CXLController
from repro.interconnect.packets import CACHE_LINE_BYTES, MessageType
from repro.memsim import CacheHierarchy, SetAssociativeCache
from repro.optim import FlatAdam
from repro.sim import Simulator
from repro.utils.bits import low_byte_mask

WORDS_PER_LINE = CACHE_LINE_BYTES // 4


@pytest.fixture
def system():
    """A miniature TECO deployment with real state everywhere."""
    n_params = 1024  # 64 lines
    rng = np.random.default_rng(0)
    cpu_params = rng.standard_normal(n_params).astype(np.float32)
    gpu_params = cpu_params.copy()  # device copy in sync pre-step
    grads = (rng.standard_normal(n_params) * 0.05).astype(np.float32)

    amap = AddressMap(base=0)
    region = amap.allocate("params", n_params * 4, giant_cache=True)
    agent = HomeAgent(amap, mode=CoherenceMode.UPDATE)
    for line in region.lines():
        agent.seed_device_copy(line)
    hierarchy = CacheHierarchy(
        [SetAssociativeCache(CACHE_LINE_BYTES * 8, CACHE_LINE_BYTES, 2)]
    )
    return {
        "n_params": n_params,
        "cpu": cpu_params,
        "gpu": gpu_params,
        "grads": grads,
        "amap": amap,
        "region": region,
        "agent": agent,
        "hierarchy": hierarchy,
    }


def run_full_step(system, dirty_bytes: int) -> dict:
    """Drive one parameter-update step through every component."""
    region = system["region"]
    agent = system["agent"]
    hierarchy = system["hierarchy"]
    cpu = system["cpu"]
    gpu = system["gpu"]

    # 1) CPU ADAM sweep over the master copy, block by block; every block
    #    issues stores into the cache hierarchy at its arena addresses.
    optimizer = FlatAdam(system["n_params"], lr=1e-2)
    evicted: list[int] = []

    def on_block(start: int, end: int) -> None:
        for word in range(start, end, WORDS_PER_LINE):
            address = region.base + word * 4
            result = hierarchy.access(address, is_write=True)
            evicted.extend(result.memory_writebacks)

    optimizer.step(cpu, system["grads"], block=64, on_block=on_block)
    evicted.extend(hierarchy.flush())  # the per-iteration CXLFENCE flush
    evicted = sorted(set(evicted))
    assert len(evicted) == region.n_lines  # every line written back once

    # 2) Home agent: each write-back runs the update protocol.
    flush_msgs = 0
    for line in evicted:
        agent.cpu_write(line)
        msgs = agent.cpu_writeback(line, dirty_bytes=dirty_bytes)
        assert MessageType.FLUSH_DATA in msgs
        flush_msgs += 1

    # 3) Aggregator packs payload bytes for each line from the master.
    register = DBARegister(enabled=dirty_bytes < 4, dirty_bytes=dirty_bytes)
    aggregator = Aggregator(register)
    lines_matrix = cpu.reshape(-1, WORDS_PER_LINE)
    payloads = aggregator.pack_lines(lines_matrix)

    # 4) CXL controller transports every line in the DES.
    sim = Simulator()
    controller = CXLController(sim)

    def producer(sim):
        """Stream all lines, then fence."""
        for line in evicted:
            yield controller.send_line(
                CacheLinePayload(line, dirty_bytes=dirty_bytes)
            )
        return (yield controller.fence())

    proc = sim.process(producer(sim))
    sim.run()
    assert controller.lines_delivered == region.n_lines

    # 5) Disaggregator merges into the stale device copy.
    disaggregator = Disaggregator(register)
    merged = disaggregator.merge_lines(
        gpu.reshape(-1, WORDS_PER_LINE), payloads
    )
    system["gpu"] = merged.reshape(-1)
    return {
        "fence_time": proc.value,
        "wire_bytes": controller.payload_bytes_delivered,
        "flush_msgs": flush_msgs,
    }


class TestFullPipeline:
    def test_full_precision_path_is_exact(self, system):
        out = run_full_step(system, dirty_bytes=4)
        np.testing.assert_array_equal(system["gpu"], system["cpu"])
        assert out["wire_bytes"] == system["region"].n_lines * 64

    def test_dba_path_matches_documented_truncation(self, system):
        before = system["gpu"].copy()
        out = run_full_step(system, dirty_bytes=2)
        mask = low_byte_mask(2)
        gw = system["gpu"].view(np.uint32)
        cw = system["cpu"].view(np.uint32)
        bw = before.view(np.uint32)
        # low bytes came from the master, high bytes from the stale copy
        np.testing.assert_array_equal(gw & mask, cw & mask)
        np.testing.assert_array_equal(gw & ~mask, bw & ~mask)
        # ...and the wire moved half the bytes
        assert out["wire_bytes"] == system["region"].n_lines * 32

    def test_dba_error_small_for_small_updates(self, system):
        run_full_step(system, dirty_bytes=2)
        err = np.max(np.abs(system["gpu"] - system["cpu"]))
        scale = np.max(np.abs(system["cpu"]))
        assert err < 0.02 * scale

    def test_coherence_states_consistent_after_step(self, system):
        run_full_step(system, dirty_bytes=2)
        agent = system["agent"]
        for line in system["region"].lines():
            # both peers share the line; the GPU can read without traffic
            assert agent.device_read(line) == []
        assert agent.stats.on_demand_fetches == 0

    def test_fence_time_matches_wire_arithmetic(self, system):
        out = run_full_step(system, dirty_bytes=2)
        from repro.interconnect.cxl import CXLLinkModel

        model = CXLLinkModel.paper_default()
        expected = (
            system["region"].n_lines * model.line_transfer_time(2)
            + model.latency
        )
        assert out["fence_time"] == pytest.approx(expected, rel=1e-6)


class TestGradientDirectionPipeline:
    """The reverse path (Figure 6 step 3): gradients flow GPU -> CPU
    through the GPU L2 cache, the home agent's update protocol, and the
    CXL controller — no DBA (gradients change all bytes)."""

    def test_gradient_stream_end_to_end(self):
        n_params = 512  # 32 lines
        amap = AddressMap(base=0)
        region = amap.allocate("grad_buffer", n_params * 4, giant_cache=True)
        agent = HomeAgent(amap, mode=CoherenceMode.UPDATE)
        # GPU L2 in front of the giant-cache region.
        gpu_l2 = SetAssociativeCache(CACHE_LINE_BYTES * 8, CACHE_LINE_BYTES, 2)

        # Backward writes gradients line by line through the GPU L2.
        evicted = gpu_l2.access_stream(
            region.base, region.n_lines, is_write=True
        ).tolist()
        evicted += gpu_l2.flush()
        assert sorted(set(evicted)) == list(region.lines())

        # Each write-back runs the device-side update protocol.
        for line in sorted(set(evicted)):
            agent.device_write(line)
            msgs = agent.device_writeback(line)  # full line, no DBA
            assert MessageType.FLUSH_DATA in msgs

        # Transport over CXL in the DES.
        sim = Simulator()
        controller = CXLController(sim)

        def producer(sim):
            """Stream gradient lines, then CXLFENCE before the optimizer."""
            for line in sorted(set(evicted)):
                yield controller.send_line(CacheLinePayload(line))
            return (yield controller.fence())

        proc = sim.process(producer(sim))
        sim.run()
        assert controller.lines_delivered == region.n_lines
        assert controller.payload_bytes_delivered == region.n_lines * 64

        # CPU reads the gradients for the optimizer: local memory, no CXL.
        for line in region.lines():
            assert agent.cpu_read(line) == []
        assert agent.stats.on_demand_fetches == 0
        assert proc.value > 0
