"""Tests for value-change and communication profilers."""

import numpy as np
import pytest

from repro.models import get_model
from repro.profiling import (
    ValueChangeProfiler,
    classify_snapshot_series,
    communication_fraction_rows,
)


class TestValueChangeProfiler:
    def test_first_observation_returns_none(self):
        p = ValueChangeProfiler()
        assert p.observe(np.zeros(10, dtype=np.float32)) is None

    def test_identical_snapshots(self):
        p = ValueChangeProfiler()
        x = np.ones(100, dtype=np.float32)
        p.observe(x)
        stats = p.observe(x.copy())
        assert stats.changed_fraction == 0.0

    def test_low_byte_perturbation_classified_case1(self):
        p = ValueChangeProfiler()
        x = np.ones(1000, dtype=np.float32)
        p.observe(x)
        y = x.view(np.uint32).copy()
        y += 1  # lowest byte only
        stats = p.observe(y.view(np.float32))
        assert stats.last_byte == pytest.approx(1.0)
        assert stats.low_bytes_dominant

    def test_exponent_change_classified_other(self):
        p = ValueChangeProfiler()
        p.observe(np.ones(10, dtype=np.float32))
        stats = p.observe(np.full(10, 2.0, dtype=np.float32))
        assert stats.other == pytest.approx(1.0)

    def test_shape_change_rejected(self):
        p = ValueChangeProfiler()
        p.observe(np.zeros(4, dtype=np.float32))
        with pytest.raises(ValueError):
            p.observe(np.zeros(5, dtype=np.float32))

    def test_mean_fractions_requires_history(self):
        with pytest.raises(ValueError):
            ValueChangeProfiler().mean_fractions()

    def test_series_helper(self):
        snaps = [np.full(8, v, dtype=np.float32) for v in (1.0, 1.0, 2.0)]
        history = classify_snapshot_series(snaps)
        assert len(history) == 2
        assert history[0].changed_fraction == 0.0
        assert history[1].changed_fraction == 1.0

    def test_finetuning_updates_are_low_byte_dominated(self):
        """Observation 2's mechanism: small relative ADAM-like updates
        mostly perturb the low mantissa bytes."""
        rng = np.random.default_rng(0)
        p = ValueChangeProfiler()
        x = rng.standard_normal(50_000).astype(np.float32)
        p.observe(x)
        for _ in range(5):
            x = (x.astype(np.float64) * (1 + rng.normal(0, 3e-7, x.size))).astype(
                np.float32
            )
            p.observe(x)
        means = p.mean_fractions()
        assert means["last_byte"] + means["last_two_bytes"] > 0.8


class TestCommProfile:
    def test_rows_match_table1_shape(self):
        rows = communication_fraction_rows(get_model("bert-large-cased"))
        fracs = [r["comm_fraction"] for r in rows]
        assert [r["batch"] for r in rows] == [4.0, 8.0, 16.0, 20.0]
        assert fracs == sorted(fracs, reverse=True)
        assert 0.35 < fracs[0] < 0.55

    def test_split_sums_to_fraction(self):
        rows = communication_fraction_rows(
            get_model("gpt2"), batch_sizes=(4,)
        )
        r = rows[0]
        assert r["grad_fraction"] + r["param_fraction"] == pytest.approx(
            r["comm_fraction"], rel=1e-9
        )

    def test_empty_batches_rejected(self):
        with pytest.raises(ValueError):
            communication_fraction_rows(get_model("gpt2"), batch_sizes=())
