"""Shared crash-cell experiment for executor/service crash tests.

A sweep cell whose runner SIGKILLs its own worker process cannot live
in a fixture: the registry rejects duplicate names, and both
``test_exp_framework.py`` and ``test_service.py`` need the same
experiment.  :func:`ensure_crash_experiment` registers it exactly once
per process and is safe to call from every test that wants a cell able
to take a worker down (workers inherit the registration through the
fork start method).
"""

from __future__ import annotations

import os
import signal

from repro.experiments import registry

CRASH_NAME = "test-crash-cell"


def _crash_cell(ctx, crash=False, value=1):
    if crash:
        os.kill(os.getpid(), signal.SIGKILL)
    return [{"value": value, "seed": ctx.seed}]


def ensure_crash_experiment() -> str:
    """Register the crash experiment if this process hasn't yet."""
    try:
        registry.get_spec(CRASH_NAME)
    except KeyError:
        registry.register(
            CRASH_NAME, "test-only: optionally kills its worker"
        )(_crash_cell)
    return CRASH_NAME
