"""Shared test fixtures.

The Listing-1 module-level API (``from TECO import check_activation``)
is backed by a process-global :data:`repro.dba.activation.default_policy`
whose activation is *sticky* — one test (or example) calling
``check_activation(step >= act_aft_steps)`` would leave DBA latched on
for every later test in the process.  The autouse fixture below resets it
around every test so no case can contaminate another.
"""

import pytest

from repro.dba.activation import reset_default_policy


@pytest.fixture(autouse=True)
def _pristine_default_policy():
    """Reset the process-global DBA policy before and after each test."""
    reset_default_policy()
    yield
    reset_default_policy()
