"""Shared test fixtures.

Two kinds of process-global state need fencing so no test can
contaminate another — or the working tree:

* The Listing-1 module-level API (``from TECO import check_activation``)
  is backed by a process-global
  :data:`repro.dba.activation.default_policy` whose activation is
  *sticky* — one test (or example) calling
  ``check_activation(step >= act_aft_steps)`` would leave DBA latched on
  for every later test in the process.  ``_pristine_default_policy``
  resets it around every test.

* The experiment :class:`~repro.experiments.cache.ResultCache` defaults
  its root to ``$REPRO_CACHE_DIR`` or ``results/cache`` — a test (or a
  library call a test triggers) constructing a default cache would
  silently write into the repo tree.  ``_isolated_cache_dir`` points the
  env var at a per-test tmp_path, and the session-scoped
  ``_repo_tree_stays_clean`` fixture fails the run if the session leaves
  any new file behind (git-visible or under the ignored ``results/``).
"""

import subprocess
from pathlib import Path

import pytest

from repro.dba.activation import reset_default_policy
from repro.experiments.cache import CACHE_DIR_ENV

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def _pristine_default_policy():
    """Reset the process-global DBA policy before and after each test."""
    reset_default_policy()
    yield
    reset_default_policy()


@pytest.fixture(autouse=True)
def _isolated_cache_dir(tmp_path, monkeypatch):
    """Route default experiment-cache writes into the test's tmp_path."""
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "exp-cache"))


def _tree_snapshot() -> tuple[str, tuple[str, ...]]:
    """Working-tree state: git porcelain + the ignored results/ files."""
    porcelain = subprocess.run(
        ["git", "status", "--porcelain", "-uall"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        check=False,
    ).stdout
    results = REPO_ROOT / "results"
    ignored = tuple(
        sorted(
            str(p.relative_to(REPO_ROOT))
            for p in results.rglob("*")
            if p.is_file()
        )
        if results.is_dir()
        else ()
    )
    return porcelain, ignored


@pytest.fixture(autouse=True, scope="session")
def _repo_tree_stays_clean():
    """Fail the session if tests leave new files in the repo tree."""
    before = _tree_snapshot()
    yield
    after = _tree_snapshot()
    assert after == before, (
        "test session polluted the repo tree:\n"
        f"git status before:\n{before[0]}\ngit status after:\n{after[0]}\n"
        f"results/ before: {before[1]}\nresults/ after: {after[1]}"
    )
