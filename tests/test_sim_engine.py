"""Tests for the discrete-event simulation kernel."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Process, Resource, SerialLink, Simulator, Store
from repro.utils.units import Bandwidth


class TestEventsAndTimeouts:
    def test_timeout_advances_clock(self):
        sim = Simulator()
        fired = []
        ev = sim.timeout(5.0, "x")
        ev.callbacks.append(lambda e: fired.append((sim.now, e.value)))
        sim.run()
        assert fired == [(5.0, "x")]

    def test_event_ordering_is_stable(self):
        sim = Simulator()
        order = []
        for i in range(5):
            sim.timeout(1.0, i).callbacks.append(
                lambda e: order.append(e.value)
            )
        sim.run()
        assert order == [0, 1, 2, 3, 4]

    @given(
        st.lists(
            st.sampled_from([0.0, 1.0, 2.0]), min_size=1, max_size=40
        ),
        st.data(),
    )
    @settings(max_examples=50, deadline=None)
    def test_equal_timestamps_fire_in_push_order(self, delays, data):
        """Property: events sharing a timestamp pop in scheduling order.

        The heap entries carry a monotone ``seq`` tiebreaker, so the
        engine must behave as a FIFO queue *within* each timestamp —
        including events scheduled from inside callbacks of earlier
        events at that same instant (delay-0 chains).  The model below
        is literally a sorted-stable list of (fire_time, push_index).
        """
        sim = Simulator()
        fired = []
        expected = []  # (fire_time, push_index), push order
        counter = [0]

        def push(sim, delay):
            label = counter[0]
            counter[0] += 1
            expected.append((sim.now + delay, label))
            sim.timeout(delay, label).callbacks.append(
                lambda e: on_fire(e.value)
            )

        def on_fire(label):
            fired.append(label)
            # Sometimes schedule more work from inside the callback: a
            # delay-0 event lands at the *current* instant and must still
            # queue behind everything already pending at this time.
            if data.draw(st.booleans()) and counter[0] < 60:
                push(sim, data.draw(st.sampled_from([0.0, 1.0])))

        for d in delays:
            push(sim, d)
        sim.run()
        expected.sort(key=lambda pair: pair[0])  # stable: seq order kept
        assert fired == [label for _, label in expected]

    def test_callback_scheduled_zero_delay_runs_after_pending(self):
        """An event scheduled at t from a callback at t fires last."""
        sim = Simulator()
        order = []
        late = []

        def first(e):
            order.append("first")
            sim.timeout(0.0).callbacks.append(lambda e: late.append(len(order)))

        sim.timeout(1.0).callbacks.append(first)
        sim.timeout(1.0).callbacks.append(lambda e: order.append("second"))
        sim.timeout(1.0).callbacks.append(lambda e: order.append("third"))
        sim.run()
        assert order == ["first", "second", "third"]
        assert late == [3]  # fired only after all three pending callbacks

    def test_double_trigger_rejected(self):
        sim = Simulator()
        ev = sim.event()
        ev.succeed(1)
        with pytest.raises(RuntimeError):
            ev.succeed(2)

    def test_run_until(self):
        sim = Simulator()
        sim.timeout(10.0)
        sim.run(until=3.0)
        assert sim.now == 3.0

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.timeout(-1.0)


class TestProcesses:
    def test_sequential_timeouts(self):
        sim = Simulator()
        trace = []

        def proc(sim):
            yield sim.timeout(1.0)
            trace.append(sim.now)
            yield sim.timeout(2.0)
            trace.append(sim.now)
            return "done"

        p = sim.process(proc(sim))
        sim.run()
        assert trace == [1.0, 3.0]
        assert p.value == "done"

    def test_process_waits_on_process(self):
        sim = Simulator()

        def child(sim):
            yield sim.timeout(4.0)
            return 42

        def parent(sim):
            value = yield sim.process(child(sim))
            return value + 1

        p = sim.process(parent(sim))
        sim.run()
        assert p.value == 43
        assert sim.now == 4.0

    def test_all_of(self):
        sim = Simulator()

        def worker(sim, d):
            yield sim.timeout(d)
            return d

        def main(sim):
            procs = [sim.process(worker(sim, d)) for d in (3.0, 1.0, 2.0)]
            values = yield sim.all_of(procs)
            return values

        p = sim.process(main(sim))
        sim.run()
        assert p.value == [3.0, 1.0, 2.0]
        assert sim.now == 3.0

    def test_any_of(self):
        sim = Simulator()

        def main(sim):
            first = yield sim.any_of([sim.timeout(5.0, "slow"), sim.timeout(1.0, "fast")])
            return (sim.now, first)

        p = sim.process(main(sim))
        sim.run()
        assert p.value == (1.0, "fast")

    def test_wait_on_already_fired_event(self):
        sim = Simulator()
        results = []

        def main(sim):
            ev = sim.timeout(1.0, "v")
            yield sim.timeout(2.0)  # let ev fire first
            got = yield ev
            results.append((sim.now, got))

        sim.process(main(sim))
        sim.run()
        assert results == [(2.0, "v")]

    def test_exception_propagates_to_waiter(self):
        sim = Simulator()

        def bad(sim):
            yield sim.timeout(1.0)
            raise ValueError("boom")

        def main(sim):
            try:
                yield sim.process(bad(sim))
            except ValueError as exc:
                return str(exc)

        p = sim.process(main(sim))
        sim.run()
        assert p.value == "boom"

    def test_yield_non_event_raises(self):
        sim = Simulator()

        def bad(sim):
            yield 5

        sim.process(bad(sim))
        with pytest.raises(TypeError):
            sim.run()


class TestResource:
    def test_mutual_exclusion(self):
        sim = Simulator()
        res = Resource(sim, capacity=1)
        log = []

        def user(sim, name, hold):
            yield res.request()
            log.append((sim.now, name, "in"))
            yield sim.timeout(hold)
            res.release()
            log.append((sim.now, name, "out"))

        sim.process(user(sim, "a", 2.0))
        sim.process(user(sim, "b", 1.0))
        sim.run()
        assert log == [
            (0.0, "a", "in"),
            (2.0, "a", "out"),
            (2.0, "b", "in"),
            (3.0, "b", "out"),
        ]

    def test_release_without_request(self):
        sim = Simulator()
        res = Resource(sim)
        with pytest.raises(RuntimeError):
            res.release()


class TestStore:
    def test_fifo_handoff(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def producer(sim):
            for i in range(3):
                yield sim.timeout(1.0)
                yield store.put(i)

        def consumer(sim):
            for _ in range(3):
                item = yield store.get()
                got.append((sim.now, item))

        sim.process(producer(sim))
        sim.process(consumer(sim))
        sim.run()
        assert got == [(1.0, 0), (2.0, 1), (3.0, 2)]

    def test_bounded_capacity_blocks_producer(self):
        sim = Simulator()
        store = Store(sim, capacity=2)
        times = []

        def producer(sim):
            for i in range(4):
                yield store.put(i)
                times.append(sim.now)

        def consumer(sim):
            yield sim.timeout(10.0)
            for _ in range(4):
                yield store.get()
                yield sim.timeout(1.0)

        sim.process(producer(sim))
        sim.process(consumer(sim))
        sim.run()
        # first two puts immediate; 3rd when consumer frees a slot at t=10
        assert times[0] == 0.0 and times[1] == 0.0
        assert times[2] == 10.0

    def test_get_before_put(self):
        sim = Simulator()
        store = Store(sim)
        out = []

        def consumer(sim):
            item = yield store.get()
            out.append((sim.now, item))

        def producer(sim):
            yield sim.timeout(5.0)
            yield store.put("x")

        sim.process(consumer(sim))
        sim.process(producer(sim))
        sim.run()
        assert out == [(5.0, "x")]


class TestSerialLink:
    def test_single_transfer_time(self):
        sim = Simulator()
        link = SerialLink(sim, Bandwidth(100.0), latency=0.5)
        done = []

        def main(sim):
            yield link.transmit(200)  # 2 s wire + 0.5 latency
            done.append(sim.now)

        sim.process(main(sim))
        sim.run()
        assert done == [2.5]

    def test_serialization(self):
        sim = Simulator()
        link = SerialLink(sim, Bandwidth(100.0))
        done = []

        def sender(sim, n):
            yield link.transmit(n)
            done.append(sim.now)

        sim.process(sender(sim, 100))  # 1 s
        sim.process(sender(sim, 100))  # queued: completes at 2 s
        sim.run()
        assert done == [1.0, 2.0]
        assert link.busy_time == pytest.approx(2.0)
        assert link.bytes_sent == 200

    def test_extra_delay(self):
        sim = Simulator()
        link = SerialLink(sim, Bandwidth(100.0))
        done = []

        def main(sim):
            yield link.transmit(100, extra_delay=0.25)
            done.append(sim.now)

        sim.process(main(sim))
        sim.run()
        assert done == [1.25]

    def test_idle_gap_not_counted_busy(self):
        sim = Simulator()
        link = SerialLink(sim, Bandwidth(100.0))

        def main(sim):
            yield link.transmit(100)
            yield sim.timeout(5.0)
            yield link.transmit(100)

        sim.process(main(sim))
        sim.run()
        assert link.busy_time == pytest.approx(2.0)
        assert link.utilization(sim.now) == pytest.approx(2.0 / 7.0)

    def test_negative_bytes_rejected(self):
        sim = Simulator()
        link = SerialLink(sim, Bandwidth(100.0))
        with pytest.raises(ValueError):
            link.transmit(-1)
