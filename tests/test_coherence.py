"""Tests for MESI coherence, the home agent, and the giant cache."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.coherence import (
    AddressMap,
    CoherenceMode,
    GiantCacheRegion,
    HomeAgent,
    MESIState,
    PeerCache,
    SnoopFilter,
)
from repro.coherence.giant_cache import required_giant_cache_bytes
from repro.interconnect.packets import MessageType

M, E, S, I = (
    MESIState.MODIFIED,
    MESIState.EXCLUSIVE,
    MESIState.SHARED,
    MESIState.INVALID,
)


def make_agent(mode=CoherenceMode.UPDATE, size=4096):
    amap = AddressMap()
    region = amap.allocate("params", size, giant_cache=True)
    amap.allocate("scratch", 4096, giant_cache=False)
    agent = HomeAgent(amap, mode=mode)
    return agent, amap, region


class TestMESIState:
    def test_predicates(self):
        assert M.can_read and M.can_write and M.owns_dirty_data
        assert E.can_read and E.can_write and not E.owns_dirty_data
        assert S.can_read and not S.can_write
        assert not I.can_read and not I.can_write

    def test_peer_cache_default_invalid(self):
        pc = PeerCache("x")
        assert pc.state(0) is I
        assert pc.resident == 0

    def test_peer_cache_set_invalid_removes(self):
        pc = PeerCache("x")
        pc.set_state(64, M)
        assert pc.resident == 1
        pc.set_state(64, I)
        assert pc.resident == 0


class TestGiantCache:
    def test_region_alignment(self):
        with pytest.raises(ValueError):
            GiantCacheRegion(base=10, size=64)
        with pytest.raises(ValueError):
            GiantCacheRegion(base=0, size=100)

    def test_contains_and_lines(self):
        r = GiantCacheRegion(base=0, size=256)
        assert r.n_lines == 4
        assert r.contains(0) and r.contains(255) and not r.contains(256)
        assert list(r.lines()) == [0, 64, 128, 192]

    def test_address_map_allocation(self):
        amap = AddressMap()
        p = amap.allocate("p", 1000, giant_cache=True)  # rounds to 1024
        g = amap.allocate("g", 64, giant_cache=False)
        assert p.size == 1024
        assert g.base == p.end
        assert amap.is_giant_cached(p.base)
        assert not amap.is_giant_cached(g.base)
        assert amap.giant_cache_bytes == 1024

    def test_duplicate_name_rejected(self):
        amap = AddressMap()
        amap.allocate("p", 64, giant_cache=True)
        with pytest.raises(ValueError):
            amap.allocate("p", 64, giant_cache=True)

    def test_sizing_rule(self):
        # Bert-large-cased: 334M params FP32 + gradient buffer.
        params = 334_000_000 * 4
        buf = 32 * 2**20
        size = required_giant_cache_bytes(params, buf)
        assert size >= params + buf
        assert size % 64 == 0


class TestUpdateProtocolParameters:
    """Figure 5's parameter-update flow under the update protocol."""

    def test_initial_write_sequence(self):
        agent, amap, region = make_agent()
        line = region.base
        agent.seed_device_copy(line)
        assert agent.device.state(line) is E

        msgs = agent.cpu_write(line)  # step 1+2: ReadOwn, then M
        assert MessageType.READ_OWN in msgs
        assert agent.cpu.state(line) is M
        assert agent.device.state(line) is S  # peer keeps stale copy

        msgs = agent.cpu_writeback(line)  # Go_Flush approval -> push
        assert msgs == [MessageType.GO_FLUSH, MessageType.FLUSH_DATA]
        assert agent.cpu.state(line) is S  # M -> S, the Figure-4 red arrow
        assert agent.device.state(line) is S

    def test_evict_returns_device_to_exclusive(self):
        agent, _, region = make_agent()
        line = region.base
        agent.seed_device_copy(line)
        agent.cpu_write(line)
        agent.cpu_writeback(line)
        agent.cpu_evict(line)
        assert agent.cpu.state(line) is I
        assert agent.device.state(line) is E

    def test_device_read_is_always_a_hit(self):
        """The consumer never fetches on demand under the update protocol."""
        agent, _, region = make_agent()
        line = region.base
        agent.seed_device_copy(line)
        agent.cpu_write(line)
        agent.cpu_writeback(line)
        assert agent.device_read(line) == []
        assert agent.stats.on_demand_fetches == 0

    def test_dba_writeback_halves_payload(self):
        full, _, r1 = make_agent()
        dba, _, r2 = make_agent()
        for agent, region, db in ((full, r1, 4), (dba, r2, 2)):
            for line in region.lines():
                agent.seed_device_copy(line)
                agent.cpu_write(line)
                agent.cpu_writeback(line, dirty_bytes=db)
        assert dba.stats.data_bytes < full.stats.data_bytes
        # 32B payload + header vs 64B payload + header
        assert full.stats.data_bytes == pytest.approx(
            r1.n_lines * 68
        )
        assert dba.stats.data_bytes == pytest.approx(r2.n_lines * 36)

    def test_non_giant_line_generates_no_traffic(self):
        agent, amap, _ = make_agent()
        scratch = amap.regions["scratch"].base
        assert agent.cpu_write(scratch) == []
        assert agent.cpu_writeback(scratch) == []
        assert agent.stats.total_bytes == 0

    def test_flush_all_pushes_every_dirty_line(self):
        agent, _, region = make_agent(size=64 * 8)
        for line in region.lines():
            agent.seed_device_copy(line)
            agent.cpu_write(line)
        pushed = agent.cpu_flush_all()
        assert pushed == region.n_lines
        assert agent.stats.count(MessageType.FLUSH_DATA) == region.n_lines
        for line in region.lines():
            assert agent.cpu.state(line) is I
            assert agent.device.state(line) is E


class TestInvalidationProtocol:
    def test_write_invalidates_peer(self):
        agent, _, region = make_agent(mode=CoherenceMode.INVALIDATION)
        line = region.base
        agent.seed_device_copy(line)
        msgs = agent.cpu_write(line)
        assert MessageType.INVALIDATE in msgs
        assert agent.device.state(line) is I
        assert agent.cpu.state(line) is M

    def test_consumer_read_fetches_on_demand(self):
        agent, _, region = make_agent(mode=CoherenceMode.INVALIDATION)
        line = region.base
        agent.seed_device_copy(line)
        agent.cpu_write(line)
        msgs = agent.device_read(line)
        assert msgs == [MessageType.READ_SHARED, MessageType.DATA]
        assert agent.stats.on_demand_fetches == 1
        assert agent.device.state(line) is S

    def test_invalidation_costs_more_wire_bytes(self):
        """Same producer/consumer pattern: invalidation sends invalidate +
        read + data; update sends flush + data — update is cheaper and has
        zero on-demand fetches (Section IV-A2)."""
        patterns = {}
        for mode in CoherenceMode:
            agent, _, region = make_agent(mode=mode, size=64 * 32)
            for line in region.lines():
                agent.seed_device_copy(line)
            for _ in range(3):  # 3 training steps
                for line in region.lines():
                    agent.cpu_write(line)
                    agent.cpu_writeback(line)
                for line in region.lines():
                    agent.device_read(line)
            patterns[mode] = agent.stats
        upd = patterns[CoherenceMode.UPDATE]
        inv = patterns[CoherenceMode.INVALIDATION]
        assert upd.on_demand_fetches == 0
        assert inv.on_demand_fetches > 0
        assert inv.total_bytes > upd.total_bytes

    def test_snoop_filter_attached_in_invalidation_mode(self):
        agent, _, region = make_agent(mode=CoherenceMode.INVALIDATION)
        assert agent.snoop_filter is not None
        line = region.base
        agent.seed_device_copy(line)
        assert agent.snoop_filter.sharers(line) == {"device"}
        agent.cpu_write(line)
        assert agent.snoop_filter.sharers(line) == {"cpu"}

    def test_update_mode_needs_no_snoop_filter(self):
        agent, _, _ = make_agent(mode=CoherenceMode.UPDATE)
        assert agent.snoop_filter is None


class TestGradientFlow:
    """Figure 6 step 3: gradients stream GPU -> CPU during backward."""

    def test_device_write_then_writeback_reaches_cpu(self):
        agent, _, region = make_agent()
        line = region.base
        agent.device_write(line)
        assert agent.device.state(line) is M
        msgs = agent.device_writeback(line)
        assert MessageType.FLUSH_DATA in msgs
        # CPU then reads the gradient locally: no CXL traffic.
        assert agent.cpu_read(line) == []
        assert agent.stats.on_demand_fetches == 0

    def test_invalidation_gradient_read_is_on_demand(self):
        agent, _, region = make_agent(mode=CoherenceMode.INVALIDATION)
        line = region.base
        agent.seed_cpu_copy(line)
        agent.device_write(line)
        assert agent.cpu.state(line) is I
        msgs = agent.cpu_read(line)
        assert MessageType.DATA in msgs
        assert agent.stats.on_demand_fetches == 1


class TestSnoopFilter:
    def test_sharer_tracking(self):
        sf = SnoopFilter()
        sf.add_sharer(0, "cpu")
        sf.add_sharer(0, "device")
        assert sf.sharers(0) == {"cpu", "device"}
        sf.remove_sharer(0, "cpu")
        assert sf.sharers(0) == {"device"}
        sf.remove_sharer(0, "device")
        assert sf.tracked_lines == 0

    def test_storage_overhead_scales(self):
        sf = SnoopFilter()
        # T5-large giant cache ~2 GiB -> a directory in the tens of MB:
        # the storage TECO's design eliminates.
        overhead = sf.storage_bytes(2 * 2**30)
        assert overhead == (2 * 2**30 // 64) * 8

    def test_invalid_entry_width(self):
        with pytest.raises(ValueError):
            SnoopFilter(bits_per_entry=0)


class TestProtocolInvariants:
    @given(
        st.lists(
            st.sampled_from(
                ["cpu_write", "cpu_writeback", "cpu_evict", "device_read"]
            ),
            max_size=40,
        ),
        st.sampled_from(list(CoherenceMode)),
    )
    @settings(max_examples=60, deadline=None)
    def test_single_writer_multiple_reader(self, ops, mode):
        """SWMR invariant: the two peers are never both in M, and a peer in
        M implies the other cannot read stale data (is I or S-after-push)."""
        agent, _, region = make_agent(mode=mode)
        line = region.base
        agent.seed_device_copy(line)
        for op in ops:
            getattr(agent, op)(line)
            cs, gs = agent.cpu.state(line), agent.device.state(line)
            assert not (cs is M and gs is M)
            if cs is M:
                assert gs in (I, S)
            # Two copies readable implies neither is dirty-exclusive.
            if cs.can_read and gs.can_read:
                assert M not in (cs, gs) or mode is CoherenceMode.UPDATE

    @given(
        st.lists(
            st.sampled_from(["device_write", "device_writeback", "cpu_read"]),
            max_size=40,
        ),
        st.sampled_from(list(CoherenceMode)),
    )
    @settings(max_examples=60, deadline=None)
    def test_gradient_direction_swmr(self, ops, mode):
        agent, _, region = make_agent(mode=mode)
        line = region.base
        for op in ops:
            getattr(agent, op)(line)
            cs, gs = agent.cpu.state(line), agent.device.state(line)
            assert not (cs is M and gs is M)
            if gs is M:
                assert cs in (I, S)


class TestDataVersionTracking:
    """End-to-end freshness: attach version numbers to line writes and
    check the consumer always observes the latest version once the
    protocol says the data moved."""

    @given(
        st.lists(st.integers(0, 7), min_size=1, max_size=60),
        st.sampled_from(list(CoherenceMode)),
    )
    @settings(max_examples=40, deadline=None)
    def test_consumer_never_reads_stale_after_sync(self, line_picks, mode):
        agent, _, region = make_agent(mode=mode, size=64 * 8)
        lines = list(region.lines())
        for line in lines:
            agent.seed_device_copy(line)
        cpu_version = {line: 0 for line in lines}
        device_version = {line: 0 for line in lines}

        for pick in line_picks:
            line = lines[pick]
            # producer writes a new version
            agent.cpu_write(line)
            cpu_version[line] += 1
            msgs = agent.cpu_writeback(line)
            if mode is CoherenceMode.UPDATE:
                # FlushData carried the new version to the device
                assert MessageType.FLUSH_DATA in msgs
                device_version[line] = cpu_version[line]
            # consumer reads
            read_msgs = agent.device_read(line)
            if MessageType.DATA in read_msgs:
                device_version[line] = cpu_version[line]
            # the consumer's copy must now be current
            assert device_version[line] == cpu_version[line]
            assert agent.device.state(line).can_read

    def test_flush_all_synchronizes_every_line(self):
        agent, _, region = make_agent(mode=CoherenceMode.UPDATE, size=64 * 16)
        versions = {}
        for i, line in enumerate(region.lines()):
            agent.seed_device_copy(line)
            agent.cpu_write(line)
            versions[line] = i
        pushed = agent.cpu_flush_all()
        assert pushed == region.n_lines
        # every line is now readable on the device without traffic
        for line in region.lines():
            assert agent.device_read(line) == []


class TestFlitEfficiencyDerivation:
    def test_derived_efficiency_matches_link_constant(self):
        """The 94.3% CXL efficiency constant is within 0.3% of the value
        derived from 68-byte flit framing."""
        from repro.interconnect.cxl import CXL_EFFICIENCY
        from repro.interconnect.flits import streaming_efficiency

        derived = streaming_efficiency()
        assert abs(derived - CXL_EFFICIENCY) < 0.003

    def test_flit_geometry(self):
        from repro.interconnect.flits import CXL_FLIT

        assert CXL_FLIT.flit_bytes == 68
        assert CXL_FLIT.payload_bytes_per_flit == 64
        assert CXL_FLIT.flits_for_payload(64) == 1
        assert CXL_FLIT.flits_for_payload(65) == 2
        assert CXL_FLIT.flits_for_payload(0) == 0

    def test_validation(self):
        from repro.interconnect.flits import FlitFormat, streaming_efficiency

        with pytest.raises(ValueError):
            FlitFormat(slot_bytes=0)
        with pytest.raises(ValueError):
            streaming_efficiency(stream_bytes=0)
