"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.data import (
    classification_set,
    lm_batches,
    lm_corpus,
    summarization_pairs,
    wisconsin_like_graph,
)


class TestLMCorpus:
    def test_range_and_length(self):
        rng = np.random.default_rng(0)
        corpus = lm_corpus(5000, 32, rng)
        assert corpus.shape == (5000,)
        assert corpus.min() >= 0 and corpus.max() < 32

    def test_markov_structure_is_learnable(self):
        """Bigram entropy must be well below unigram entropy — otherwise
        the LM experiments could not reduce perplexity."""
        rng = np.random.default_rng(1)
        corpus = lm_corpus(20_000, 16, rng)
        uni = np.bincount(corpus, minlength=16) / corpus.size
        h_uni = -np.sum(uni[uni > 0] * np.log(uni[uni > 0]))
        joint = np.zeros((16, 16))
        np.add.at(joint, (corpus[:-1], corpus[1:]), 1)
        joint /= joint.sum()
        cond = joint / np.maximum(joint.sum(axis=1, keepdims=True), 1e-12)
        h_bi = -np.sum(joint * np.where(cond > 0, np.log(cond + 1e-12), 0))
        assert h_bi < 0.8 * h_uni

    def test_determinism(self):
        a = lm_corpus(100, 8, np.random.default_rng(42))
        b = lm_corpus(100, 8, np.random.default_rng(42))
        np.testing.assert_array_equal(a, b)

    def test_invalid(self):
        with pytest.raises(ValueError):
            lm_corpus(1, 8, np.random.default_rng(0))

    def test_batches_shape(self):
        rng = np.random.default_rng(2)
        corpus = lm_corpus(1000, 8, rng)
        batches = lm_batches(corpus, 4, 16, 5, rng)
        assert len(batches) == 5
        assert batches[0][0].shape == (4, 16)

    def test_batches_validation(self):
        rng = np.random.default_rng(3)
        with pytest.raises(ValueError):
            lm_batches(np.arange(10), 2, 20, 1, rng)


class TestClassification:
    def test_shapes(self):
        ids, labels = classification_set(50, 32, 12, np.random.default_rng(4))
        assert ids.shape == (50, 12)
        assert labels.shape == (50,)

    def test_keywords_present(self):
        ids, labels = classification_set(
            100, 32, 10, np.random.default_rng(5)
        )
        for row, label in zip(ids, labels):
            own = {label * 2, label * 2 + 1}
            assert own & set(row.tolist())

    def test_vocab_too_small(self):
        with pytest.raises(ValueError):
            classification_set(10, 4, 8, np.random.default_rng(0), n_classes=2)


class TestSummarization:
    def test_target_is_strided_source(self):
        src, tgt = summarization_pairs(10, 16, 12, 6, np.random.default_rng(6))
        np.testing.assert_array_equal(tgt, src[:, ::2][:, :6])

    def test_invalid_lengths(self):
        with pytest.raises(ValueError):
            summarization_pairs(1, 16, 4, 8, np.random.default_rng(0))


class TestWisconsinGraph:
    def test_shapes_and_normalization(self):
        feats, a_hat, labels = wisconsin_like_graph(np.random.default_rng(7))
        n = labels.size
        assert feats.shape[0] == n and a_hat.shape == (n, n)
        np.testing.assert_allclose(a_hat, a_hat.T, atol=1e-6)

    def test_heterophily(self):
        """Most edges connect different classes (the Wisconsin regime)."""
        rng = np.random.default_rng(8)
        feats, a_hat, labels = wisconsin_like_graph(rng, n_nodes=80)
        adj = (a_hat > 0) & ~np.eye(labels.size, dtype=bool)
        i, j = np.nonzero(np.triu(adj))
        cross = np.mean(labels[i] != labels[j])
        assert cross > 0.5

    def test_features_informative(self):
        """A linear probe on features beats chance comfortably."""
        rng = np.random.default_rng(9)
        feats, _, labels = wisconsin_like_graph(rng, n_nodes=120)
        centroids = np.stack(
            [feats[labels == c].mean(axis=0) for c in range(2)]
        )
        pred = np.argmin(
            ((feats[:, None, :] - centroids[None]) ** 2).sum(-1), axis=1
        )
        assert np.mean(pred == labels) > 0.75

    def test_too_small(self):
        with pytest.raises(ValueError):
            wisconsin_like_graph(np.random.default_rng(0), n_nodes=2)
