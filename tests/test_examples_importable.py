"""Smoke checks: every example script parses, imports, and exposes main.

Full example runs take minutes; the fast guarantee here is that each
script stays syntactically valid and its imports resolve against the
current API (the usual way examples rot).
"""

import ast
import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_expected_examples_present():
    names = {p.stem for p in EXAMPLE_FILES}
    assert {
        "quickstart",
        "bert_finetune",
        "lammps_melt",
        "speedup_sweep",
        "breakdown_report",
        "tune_activation",
    } <= names


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_parses(path):
    tree = ast.parse(path.read_text())
    # every example is runnable as a script
    has_main_guard = any(
        isinstance(node, ast.If)
        and isinstance(node.test, ast.Compare)
        and getattr(node.test.left, "id", "") == "__name__"
        for node in tree.body
    )
    assert has_main_guard, f"{path.stem} lacks a __main__ guard"


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_imports_resolve(path, monkeypatch):
    """Import the module without executing main()."""
    spec = importlib.util.spec_from_file_location(
        f"example_{path.stem}", path
    )
    module = importlib.util.module_from_spec(spec)
    monkeypatch.setitem(sys.modules, spec.name, module)
    spec.loader.exec_module(module)  # top level only; main() not called
    assert hasattr(module, "main") or hasattr(module, "part1_functional")


@pytest.mark.parametrize("path", EXAMPLE_FILES, ids=lambda p: p.stem)
def test_example_has_docstring(path):
    tree = ast.parse(path.read_text())
    doc = ast.get_docstring(tree)
    assert doc and len(doc) > 40, f"{path.stem} needs a real docstring"
