"""Tests for the PR 8 workload engines: activation offload, ZeRO-3, KV-cache.

The differential harness of ISSUE 8: each engine's defining scaling law
is asserted against its own baseline configuration —

* activation offload: prefetch overlap strictly reduces the fetch stall
  versus on-demand fetching, and offloading nothing costs nothing;
* ZeRO-3: per-rank shard bytes scale exactly as ``1/ranks`` (ranks >= 2)
  and wire formats compose multiplicatively;
* KV-cache: tokens/s degrades monotonically as residency shrinks, and a
  fully-resident cache fetches zero bytes.
"""

import math

import pytest

from repro.interconnect.aggregation import wire_bytes_for
from repro.interconnect.fabric import CXLFabric, FabricParams
from repro.interconnect.gather import FabricGather
from repro.models import get_model
from repro.obs import Metrics, Tracer
from repro.offload.group_offload import (
    ActivationOffloadEngine,
    GroupOffloadPolicy,
)
from repro.offload.kvcache import KVCacheEngine, kv_bytes_per_token
from repro.offload.zero3 import Zero3Engine
from repro.sim import Simulator

SPEC = get_model("bert-large-cased")


# --- GroupOffloadPolicy ----------------------------------------------------
class TestGroupOffloadPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            GroupOffloadPolicy(n_layers=0)
        with pytest.raises(ValueError):
            GroupOffloadPolicy(n_layers=4, group_size=0)
        with pytest.raises(ValueError):
            GroupOffloadPolicy(n_layers=4, prefetch_groups=-1)
        with pytest.raises(ValueError):
            GroupOffloadPolicy(n_layers=4, offload_groups=5)
        with pytest.raises(ValueError):
            GroupOffloadPolicy(n_layers=4, skip_layers=(4,))

    def test_grouping_covers_all_layers_once(self):
        policy = GroupOffloadPolicy(n_layers=10, group_size=3)
        assert policy.n_groups == 4
        layers = [l for g in range(4) for l in policy.group_layers(g)]
        assert layers == list(range(10))
        # Last group is short.
        assert policy.group_layers(3) == (9,)

    def test_offload_groups_and_skips(self):
        policy = GroupOffloadPolicy(
            n_layers=8, group_size=2, offload_groups=2, skip_layers=(1,)
        )
        assert policy.offloaded_layers(0) == (0,)  # layer 1 skipped
        assert policy.offloaded_layers(1) == (2, 3)
        assert policy.offloaded_layers(2) == ()  # beyond offload_groups
        assert policy.total_offloaded_layers == 3

    def test_from_fraction_endpoints(self):
        none = GroupOffloadPolicy.from_fraction(12, 0.0, group_size=2)
        full = GroupOffloadPolicy.from_fraction(12, 1.0, group_size=2)
        assert none.total_offloaded_layers == 0
        assert full.total_offloaded_layers == 12
        with pytest.raises(ValueError):
            GroupOffloadPolicy.from_fraction(12, 1.5)


# --- ActivationOffloadEngine ----------------------------------------------
class TestActivationOffloadEngine:
    def _run(self, prefetch, offload_fraction=1.0, group_size=2):
        policy = GroupOffloadPolicy.from_fraction(
            SPEC.n_layers,
            offload_fraction,
            group_size=group_size,
            prefetch_groups=prefetch,
        )
        return ActivationOffloadEngine(SPEC, 4, policy=policy).simulate_step()

    def test_no_offload_is_free(self):
        result = self._run(prefetch=0, offload_fraction=0.0)
        assert result.offloaded_layers == 0
        assert result.act_wire_bytes == 0.0
        assert result.freed_bytes == 0.0
        assert result.breakdown.act_evict_exposed == 0.0
        assert result.breakdown.act_fetch_exposed == 0.0

    def test_prefetch_overlap_beats_on_demand(self):
        on_demand = self._run(prefetch=0)
        prefetched = self._run(prefetch=1)
        assert (
            prefetched.breakdown.act_fetch_exposed
            < on_demand.breakdown.act_fetch_exposed
        )
        assert prefetched.total < on_demand.total
        # Wire traffic is policy-determined, not prefetch-determined.
        assert prefetched.act_wire_bytes == on_demand.act_wire_bytes

    def test_fetch_stall_monotone_in_prefetch_depth(self):
        stalls = [
            self._run(prefetch=p).breakdown.act_fetch_exposed
            for p in (0, 1, 2)
        ]
        assert stalls[0] >= stalls[1] >= stalls[2]

    def test_breakdown_total_is_critical_path(self):
        result = self._run(prefetch=1)
        b = result.breakdown
        assert b.total == pytest.approx(b.compute + b.communication_exposed)
        assert b.act_evict_exposed >= 0.0
        assert b.act_fetch_exposed >= 0.0
        # Both directions carried traffic: activations out AND back.
        assert b.wire_bytes > 2 * result.act_wire_bytes

    def test_freed_bytes_track_offloaded_activations(self):
        full = self._run(prefetch=1, offload_fraction=1.0)
        half = self._run(prefetch=1, offload_fraction=0.5)
        assert full.freed_bytes == pytest.approx(full.act_bytes)
        assert 0.0 < half.freed_bytes < full.freed_bytes

    def test_policy_layer_mismatch_rejected(self):
        with pytest.raises(ValueError, match="layers"):
            ActivationOffloadEngine(
                SPEC, 4, policy=GroupOffloadPolicy(n_layers=SPEC.n_layers + 1)
            )

    def test_tracer_records_stall_spans(self):
        tracer = Tracer()
        policy = GroupOffloadPolicy(
            n_layers=SPEC.n_layers, group_size=2, prefetch_groups=0
        )
        ActivationOffloadEngine(
            SPEC, 4, policy=policy, tracer=tracer
        ).simulate_step()
        names = {s.name for s in tracer.spans}
        assert "act-fetch-stall" in names
        assert "forward" in names  # phase marks still emitted


# --- Zero3Engine ----------------------------------------------------------
class TestZero3Engine:
    def _run(self, ranks, fmt="fp16", **kwargs):
        return Zero3Engine(
            SPEC, 8, ranks=ranks, wire_format=fmt, **kwargs
        ).simulate_step()

    def test_validation(self):
        with pytest.raises(ValueError):
            Zero3Engine(SPEC, 8, ranks=0)
        with pytest.raises(ValueError):
            Zero3Engine(SPEC, 2, ranks=4)
        with pytest.raises(ValueError):
            Zero3Engine(SPEC, 9, ranks=2)

    def test_single_rank_degenerates(self):
        result = self._run(ranks=1)
        # No peers: gathers are no-ops, the reducer passes through.
        assert result.gather_in_bytes == 0.0
        assert result.gather_out_bytes == 0.0
        assert result.gather_wait == 0.0
        assert result.breakdown.param_gather_exposed == 0.0
        assert result.reduce_in_bytes > 0.0
        assert result.reduce_out_bytes == pytest.approx(
            result.reduce_in_bytes
        )

    def test_per_rank_shard_bytes_scale_inverse_in_ranks(self):
        results = {r: self._run(ranks=r) for r in (2, 4, 8)}
        assert results[2].per_rank_shard_bytes == pytest.approx(
            2 * results[4].per_rank_shard_bytes
        )
        assert results[4].per_rank_shard_bytes == pytest.approx(
            2 * results[8].per_rank_shard_bytes
        )

    def test_gather_volume_matches_sharding_arithmetic(self):
        R = 4
        result = self._run(ranks=R)
        shard = wire_bytes_for(SPEC.param_bytes / (SPEC.n_layers * R), "fp16")
        # Two gathers per layer (forward + backward re-gather), each
        # consuming one shard per rank.
        expected_in = 2 * SPEC.n_layers * shard * R
        assert result.gather_in_bytes == pytest.approx(expected_in)
        # Multicast replicates R-1 peer shards down each of R ports.
        assert result.gather_out_bytes == pytest.approx(
            expected_in * (R - 1)
        )

    def test_wire_format_composes_multiplicatively(self):
        fp32 = self._run(ranks=4, fmt="fp32")
        fp16 = self._run(ranks=4, fmt="fp16")
        assert fp16.gather_in_bytes == pytest.approx(fp32.gather_in_bytes / 2)
        assert fp16.reduce_in_bytes == pytest.approx(fp32.reduce_in_bytes / 2)
        assert fp16.writeback_bytes == pytest.approx(
            fp32.writeback_bytes / 2
        )

    def test_breakdown_total_is_critical_path(self):
        result = self._run(ranks=4)
        b = result.breakdown
        assert b.total == pytest.approx(b.compute + b.communication_exposed)
        assert b.param_gather_exposed > 0.0
        assert result.gather_wait >= 0.0

    def test_sharded_optimizer_shrinks_with_ranks(self):
        r2, r8 = self._run(ranks=2), self._run(ranks=8)
        assert r8.breakdown.optimizer < r2.breakdown.optimizer
        assert r8.breakdown.grad_clip == pytest.approx(
            r2.breakdown.grad_clip / 4
        )


# --- KVCacheEngine --------------------------------------------------------
class TestKVCacheEngine:
    def _run(self, residency):
        return KVCacheEngine.from_residency(
            SPEC, residency, prompt_tokens=256, decode_tokens=64
        ).simulate_decode()

    def test_validation(self):
        with pytest.raises(ValueError):
            KVCacheEngine(SPEC, prompt_tokens=-1)
        with pytest.raises(ValueError):
            KVCacheEngine(SPEC, decode_tokens=0)
        with pytest.raises(ValueError):
            KVCacheEngine(SPEC, hbm_tokens=0)
        with pytest.raises(ValueError):
            KVCacheEngine.from_residency(SPEC, 0.0)

    def test_fully_resident_cache_never_touches_cxl(self):
        result = self._run(1.0)
        assert result.fetched_bytes == 0.0
        assert result.evicted_bytes == 0.0
        assert result.fetch_exposed == 0.0
        assert result.total_time == pytest.approx(result.compute_time)

    def test_throughput_monotone_in_residency(self):
        tok_s = [self._run(r).tokens_per_s for r in (0.25, 0.5, 0.75, 1.0)]
        assert tok_s == sorted(tok_s)
        assert tok_s[0] < tok_s[-1]  # strictly non-degenerate spread

    def test_traffic_accounting(self):
        result = self._run(0.5)
        assert result.fetched_bytes > 0.0
        # Evictions: one KV pair per decoded token once the tier fills.
        assert result.evicted_bytes > 0.0
        assert result.evicted_bytes < result.fetched_bytes
        assert result.residency == pytest.approx(0.5, rel=0.01)
        assert kv_bytes_per_token(SPEC) == (
            2.0 * SPEC.n_layers * SPEC.hidden * 2
        )

    def test_compute_time_independent_of_residency(self):
        lo, hi = self._run(0.25), self._run(1.0)
        assert lo.compute_time == pytest.approx(hi.compute_time)

    def test_tracer_records_decode_span(self):
        tracer = Tracer()
        KVCacheEngine.from_residency(
            SPEC, 0.5, prompt_tokens=64, decode_tokens=8, tracer=tracer
        ).simulate_decode()
        names = {s.name for s in tracer.spans}
        assert "decode" in names
        assert "kv-fetch-stall" in names


# --- FabricGather ---------------------------------------------------------
class TestFabricGather:
    def _fabric(self, n_ports=4):
        sim = Simulator(metrics=Metrics())
        fabric = CXLFabric(
            sim, FabricParams(n_ports=n_ports, port_latency=0.0)
        )
        return sim, fabric

    def test_validation(self):
        sim, fabric = self._fabric()
        with pytest.raises(ValueError):
            FabricGather(fabric, [])
        with pytest.raises(ValueError):
            FabricGather(fabric, [0, 9])
        with pytest.raises(ValueError):
            FabricGather(fabric, [0, 1], tenant=5)
        with pytest.raises(ValueError):
            fabric.gather_unit(ranks=[0, 1]).gather(-1.0)

    def test_single_rank_gather_is_noop(self):
        sim, fabric = self._fabric()
        gather = fabric.gather_unit(ranks=[0])
        ev = gather.gather(1 << 20)
        assert ev.triggered
        assert gather.bytes_in == 0.0 and gather.bytes_out == 0.0
        sim.run()
        assert sim.now == 0.0

    def test_byte_accounting(self):
        sim, fabric = self._fabric(n_ports=4)
        gather = fabric.gather_unit(ranks=range(4))
        shard = float(1 << 22)
        done = gather.gather(shard)
        sim.run()
        assert done.triggered
        assert gather.bytes_in == shard * 4
        assert gather.bytes_out == shard * 4 * 3  # R-1 peers x R ports
        stats = fabric.stats.snapshot()
        assert stats["gather_in_bytes"] == shard * 4
        assert stats["gather_out_bytes"] == shard * 12
        # Each port carried its shard up and 3 peer shards down.
        for port in range(4):
            assert fabric.stats.port_bytes[port] == pytest.approx(shard * 4)

    def test_gather_completion_time_covers_multicast(self):
        sim, fabric = self._fabric(n_ports=2)
        gather = fabric.gather_unit(ranks=[0, 1])
        shard = float(1 << 22)
        gather.gather(shard)
        sim.run()
        bw = fabric.params.port_bandwidth
        # Lower bound: shard up + peer shard down on one port wire.
        assert sim.now >= 2 * bw.time_for(shard) - 1e-12

    def test_metrics_counters(self):
        sim, fabric = self._fabric(n_ports=2)
        gather = fabric.gather_unit(ranks=[0, 1])
        gather.gather(float(1 << 20))
        sim.run()
        counters = sim.metrics.counters()
        assert counters[f"{fabric.name}.gather.in_bytes"] == float(1 << 21)
        assert counters[f"{fabric.name}.gather.out_bytes"] == float(1 << 21)
