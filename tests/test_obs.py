"""Tests for the repro.obs observability layer (tracer, metrics, profile)."""

import json

import numpy as np
import pytest

from repro.obs import (
    NULL_METRICS,
    NULL_TRACER,
    Metrics,
    Profile,
    Tracer,
    validate_chrome_trace,
)
from repro.sim import SerialLink, Simulator, Store
from repro.utils.units import GB, Bandwidth

RNG = lambda s=0: np.random.default_rng(s)


class TestTracer:
    def test_begin_end_span(self):
        tr = Tracer()
        h = tr.begin(1.0, "work", "cat", track="t")
        tr.end(h, 3.5, extra=1)
        (span,) = tr.spans
        assert span.name == "work"
        assert span.duration == pytest.approx(2.5)
        assert span.args == {"extra": 1}

    def test_double_close_rejected(self):
        tr = Tracer()
        h = tr.begin(0.0, "x")
        tr.end(h, 1.0)
        with pytest.raises(ValueError):
            tr.end(h, 2.0)

    def test_negative_duration_rejected(self):
        tr = Tracer()
        h = tr.begin(5.0, "x")
        with pytest.raises(ValueError):
            tr.end(h, 4.0)

    def test_add_span_and_instant(self):
        tr = Tracer()
        tr.add_span(0.0, 1.0, "a", "link")
        tr.instant(0.5, "tick", "link")
        assert len(tr) == 2
        assert tr.categories() == {"link"}
        assert len(tr.spans_in("link")) == 1

    def test_wall_ts_latches_epoch(self):
        tr = Tracer()
        t0 = tr.wall_ts()
        t1 = tr.wall_ts()
        assert t0 == pytest.approx(0.0, abs=1e-3)
        assert t1 >= t0

    def test_summary_mentions_categories(self):
        tr = Tracer()
        tr.add_span(0.0, 1.0, "a", "link")
        tr.instant(0.0, "b", "queue")
        s = tr.summary()
        assert "link" in s and "queue" in s


class TestChromeExport:
    def _trace(self):
        tr = Tracer()
        tr.add_span(0.0, 1e-6, "a", "link", track="wire", bytes=64)
        tr.add_span(2e-6, 3e-6, "b", "queue", track="q")
        tr.instant(1.5e-6, "tick", "cxl", track="wire")
        return tr

    def test_schema_fields(self):
        events = self._trace().chrome_events()
        for ev in events:
            for key in ("name", "ph", "ts", "pid", "tid"):
                assert key in ev
            if ev["ph"] == "X":
                assert ev["dur"] >= 0

    def test_ts_monotonic_after_metadata(self):
        events = self._trace().chrome_events()
        real = [e["ts"] for e in events if e["ph"] != "M"]
        assert real == sorted(real)

    def test_timestamps_in_microseconds(self):
        events = self._trace().chrome_events()
        xs = [e for e in events if e["ph"] == "X" and e["name"] == "a"]
        assert xs[0]["ts"] == pytest.approx(0.0)
        assert xs[0]["dur"] == pytest.approx(1.0)  # 1e-6 s = 1 us

    def test_distinct_pids_for_distinct_processes(self):
        tr = Tracer(default_pid="sim")
        tr.add_span(0.0, 1.0, "a", "link")
        tr.add_span(0.0, 1.0, "b", "trainer", pid="host")
        events = tr.chrome_events()
        pids = {e["pid"] for e in events if e["ph"] == "X"}
        assert len(pids) == 2
        names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names == {"sim", "host"}

    def test_metrics_become_counter_events(self):
        tr = self._trace()
        mx = Metrics()
        mx.sample("util", 0.0, 0.5)
        mx.sample("util", 1e-6, 0.9)
        events = tr.chrome_events(metrics=mx)
        counters = [e for e in events if e["ph"] == "C"]
        assert len(counters) == 2
        assert counters[0]["name"] == "util"
        assert counters[0]["args"]["value"] == pytest.approx(0.5)

    def test_validate_accepts_export(self):
        obj = self._trace().chrome_trace()
        assert validate_chrome_trace(obj) == []

    def test_validate_roundtrips_through_json(self, tmp_path):
        path = tmp_path / "trace.json"
        self._trace().write_chrome(path)
        obj = json.loads(path.read_text())
        assert validate_chrome_trace(obj) == []

    def test_validate_rejects_garbage(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({"events": []}) != []
        bad = {"traceEvents": [{"name": "x", "ph": "X", "ts": 0}]}
        assert any("pid" in e for e in validate_chrome_trace(bad))
        neg = {
            "traceEvents": [
                {"name": "x", "ph": "X", "ts": 0, "dur": -1, "pid": 1, "tid": 1}
            ]
        }
        assert any("dur" in e for e in validate_chrome_trace(neg))

    def test_validate_rejects_nonmonotonic(self):
        bad = {
            "traceEvents": [
                {"name": "a", "ph": "i", "ts": 5, "pid": 1, "tid": 1},
                {"name": "b", "ph": "i", "ts": 1, "pid": 1, "tid": 1},
            ]
        }
        assert any("previous" in e for e in validate_chrome_trace(bad))


class TestMetrics:
    def test_counter_sampling_and_series(self):
        mx = Metrics()
        mx.counter("lines").inc()
        mx.counter("lines").inc(3)
        mx.sample("depth", 0.0, 1)
        mx.sample("depth", 1.0, 4)
        assert mx.value("lines") == 4
        assert mx.series("depth") == [(0.0, 1), (1.0, 4)]
        assert "depth" in mx.all_series()

    def test_counter_rejects_negative(self):
        mx = Metrics()
        with pytest.raises(ValueError):
            mx.counter("c").inc(-1)

    def test_gauge_last_value_wins(self):
        mx = Metrics()
        mx.gauge("g").set(2.0)
        mx.gauge("g").set(7.0)
        assert mx.value("g") == 7.0

    def test_value_default(self):
        assert Metrics().value("missing", default=1.5) == 1.5

    def test_summary_lists_everything(self):
        mx = Metrics()
        mx.counter("c").inc()
        mx.gauge("g").set(1.0)
        mx.sample("s", 0.0, 2.0)
        out = mx.summary()
        assert "c" in out and "g" in out and "s" in out


class TestNullObjects:
    def test_null_tracer_is_inert(self):
        h = NULL_TRACER.begin(0.0, "x")
        NULL_TRACER.end(h, 1.0)
        NULL_TRACER.add_span(0.0, 1.0, "x")
        NULL_TRACER.instant(0.0, "x")
        assert not NULL_TRACER.enabled
        assert len(NULL_TRACER) == 0
        assert NULL_TRACER.wall_ts() == 0.0

    def test_null_metrics_is_inert(self):
        NULL_METRICS.counter("c").inc(5)
        NULL_METRICS.gauge("g").set(1.0)
        NULL_METRICS.sample("s", 0.0, 1.0)
        assert not NULL_METRICS.enabled
        assert NULL_METRICS.counters() == {}
        assert NULL_METRICS.series("s") == []
        assert NULL_METRICS.value("c") == 0.0

    def test_simulator_defaults_to_nulls(self):
        sim = Simulator()
        assert sim.tracer is NULL_TRACER
        assert sim.metrics is NULL_METRICS


class TestInstrumentedSim:
    def test_link_spans_and_counters(self):
        tr, mx = Tracer(), Metrics()
        sim = Simulator(tracer=tr, metrics=mx)
        link = SerialLink(sim, Bandwidth(1 * GB), name="wire")

        def proc(sim):
            yield link.transmit(1024)
            yield link.transmit(2048)

        sim.process(proc(sim))
        sim.run()
        spans = tr.spans_in("link")
        assert len(spans) == 2
        assert spans[0].args["bytes"] == 1024
        assert mx.value("wire.bytes") == 3072
        assert mx.value("wire.transfers") == 2

    def test_link_utilization_true_ratio_and_bounded(self):
        sim = Simulator(metrics=(mx := Metrics()))
        link = SerialLink(sim, Bandwidth(1 * GB), name="wire")

        def proc(sim):
            yield link.transmit(1000)
            yield sim.timeout(link.bandwidth.time_for(1000))  # idle gap
            yield link.transmit(1000)

        sim.process(proc(sim))
        sim.run()
        busy = 2 * link.bandwidth.time_for(1000)
        # true ratio over an arbitrary horizon, not clamped
        assert link.utilization(2 * busy) == pytest.approx(0.5)
        assert link.utilization(busy) == pytest.approx(1.0)
        # the invariant the old min(1.0, ...) clamp used to hide
        for _, value in mx.series("wire.utilization"):
            assert value <= 1.0 + 1e-12

    def test_utilization_rejects_bad_horizon(self):
        link = SerialLink(Simulator(), Bandwidth(1 * GB))
        with pytest.raises(ValueError):
            link.utilization(0.0)

    def test_store_depth_sampling_and_block_instants(self):
        tr, mx = Tracer(), Metrics()
        sim = Simulator(tracer=tr, metrics=mx)
        store = Store(sim, capacity=2, name="q")

        def producer(sim):
            for i in range(4):
                yield store.put(i)

        def consumer(sim):
            for _ in range(4):
                yield sim.timeout(1.0)
                yield store.get()

        sim.process(producer(sim))
        sim.process(consumer(sim))
        sim.run()
        depths = [v for _, v in mx.series("q.depth")]
        assert depths and max(depths) <= 2
        blocked = [i for i in tr.instants if i.name == "put-blocked"]
        assert blocked  # producer outran the 2-entry queue


class TestTrainerTracing:
    def _trainer(self, profile):
        from repro.offload import OffloadTrainer
        from repro.tensor.transformer import TinyTransformerLM

        model = TinyTransformerLM(
            vocab=16, dim=16, n_heads=2, n_layers=1, max_seq=12, rng=RNG()
        )
        return OffloadTrainer(
            model, lr=1e-3, tracer=profile.tracer, metrics=profile.metrics
        )

    def _batches(self, n):
        rng = RNG(1)
        pattern = np.tile(np.arange(16), 4)
        return [
            (np.stack([pattern[j : j + 10] for j in rng.integers(0, 50, 4)]),)
            for _ in range(n)
        ]

    def test_phase_spans_and_metrics(self):
        profile = Profile.new()
        trainer = self._trainer(profile)
        trainer.train(self._batches(3))
        spans = profile.tracer.spans_in("trainer")
        names = {s.name for s in spans}
        assert {
            "forward", "backward", "grad-transfer", "clip", "adam",
            "param-transfer", "step",
        } <= names
        assert all(s.pid == "host" for s in spans)
        steps = [s for s in spans if s.name == "step"]
        assert len(steps) == 3
        assert steps[0].args["step"] == 0
        assert profile.metrics.value("trainer.steps") == 3
        assert len(profile.metrics.series("trainer.loss")) == 3

    def test_untraced_trainer_records_nothing(self):
        from repro.offload import OffloadTrainer
        from repro.tensor.transformer import TinyTransformerLM

        model = TinyTransformerLM(
            vocab=16, dim=16, n_heads=2, n_layers=1, max_seq=12, rng=RNG()
        )
        trainer = OffloadTrainer(model, lr=1e-3)
        trainer.train(self._batches(2))
        assert trainer.tracer is NULL_TRACER
        assert len(trainer.tracer) == 0


class TestEngineTracing:
    def test_engine_phase_spans_in_sim_time(self):
        from repro.models import get_model
        from repro.offload import TECOEngine

        profile = Profile.new()
        engine = TECOEngine(
            get_model("gpt2"), 4, tracer=profile.tracer,
            metrics=profile.metrics,
        )
        breakdown = engine.simulate_step()
        spans = profile.tracer.spans_in("trainer")
        names = {s.name for s in spans}
        assert {"forward", "backward", "clip", "adam", "step"} <= names
        step = next(s for s in spans if s.name == "step")
        assert step.end == pytest.approx(breakdown.total)
        # the engine's CXL wire also traced its transfers
        assert profile.tracer.spans_in("link")

    def test_parallel_engine_traces(self):
        from repro.models import get_model
        from repro.offload import SystemKind
        from repro.offload.parallel import ClusterParams, DataParallelEngine

        profile = Profile.new()
        engine = DataParallelEngine(
            SystemKind.TECO_REDUCTION,
            get_model("gpt2"),
            8,
            cluster=ClusterParams(n_gpus=2),
            tracer=profile.tracer,
            metrics=profile.metrics,
        )
        engine.simulate_step()
        assert profile.tracer.spans_in("trainer")


class TestReplayInstrumentation:
    def test_replay_records_summary(self):
        from repro.memsim.trace import WritebackTrace
        from repro.trace.replay import replay_trace

        tr, mx = Tracer(), Metrics()
        trace = WritebackTrace(
            np.linspace(0.0, 1e-6, 50), np.arange(50) * 64
        )
        result = replay_trace(trace, tracer=tr, metrics=mx)
        (stream,) = [s for s in tr.spans_in("link") if s.name == "stream"]
        assert stream.end == pytest.approx(result.finish_time)
        assert stream.args["n_lines"] == 50
        assert mx.value("replay.lines") == 50
        assert mx.value("replay.wire_bytes") == result.wire_bytes

    def test_replay_untraced_unchanged(self):
        from repro.memsim.trace import WritebackTrace
        from repro.trace.replay import replay_trace

        trace = WritebackTrace(np.linspace(0.0, 1e-6, 50), np.arange(50) * 64)
        a = replay_trace(trace)
        b = replay_trace(trace, tracer=Tracer(), metrics=Metrics())
        assert a == b


class TestCoherenceInstrumentation:
    def test_home_agent_mirrors_message_counters(self):
        from repro.coherence.giant_cache import AddressMap
        from repro.coherence.home_agent import HomeAgent
        from repro.interconnect.packets import MessageType

        mx = Metrics()
        amap = AddressMap()
        region = amap.allocate("params", 4096, giant_cache=True)
        agent = HomeAgent(amap, metrics=mx)
        line = region.base
        agent.seed_device_copy(line)
        agent.cpu_write(line)
        agent.cpu_writeback(line)
        assert mx.value("coherence.msg.READ_OWN") == agent.stats.count(
            MessageType.READ_OWN
        )
        assert mx.value("coherence.data_bytes") == agent.stats.data_bytes
        assert mx.value("coherence.control_bytes") == agent.stats.control_bytes


class TestProfileAndTraceExperiment:
    @pytest.mark.slow
    def test_trace_experiment_fig10(self, tmp_path):
        from repro.obs import trace_experiment

        out = tmp_path / "trace.json"
        profile = trace_experiment("fig10", out=out, steps=3)
        obj = json.loads(out.read_text())
        assert validate_chrome_trace(obj) == []
        cats = {e.get("cat") for e in obj["traceEvents"]}
        # acceptance: CXL link + pending queue + trainer phases in one file
        assert {"link", "queue", "trainer"} <= cats
        assert profile.metrics.value("trainer.steps") > 0
        assert "trace summary" in profile.summary()

    def test_trace_experiment_rejects_unknown(self):
        from repro.obs import trace_experiment

        with pytest.raises(ValueError):
            trace_experiment("fig99")
        with pytest.raises(ValueError):
            trace_experiment("fig10", steps=1)
