"""Tests for LR schedules, parameter groups, and gradient accumulation."""

import math

import numpy as np
import pytest

from repro.offload import OffloadTrainer
from repro.optim import (
    Adam,
    ConstantLR,
    CosineDecay,
    FlatAdam,
    WarmupLinearDecay,
)
from repro.tensor import Tensor
from repro.tensor.transformer import TinyTransformerLM

RNG = lambda s=0: np.random.default_rng(s)


def tiny_lm(seed=0):
    return TinyTransformerLM(
        vocab=16, dim=16, n_heads=2, n_layers=1, max_seq=12, rng=RNG(seed)
    )


def batches(n, seed=1, batch=4):
    rng = RNG(seed)
    return [(rng.integers(0, 16, (batch, 10)),) for _ in range(n)]


class TestSchedules:
    def test_constant(self):
        s = ConstantLR(1e-3)
        assert s.lr_at(0) == s.lr_at(1000) == 1e-3

    def test_warmup_then_decay(self):
        s = WarmupLinearDecay(base_lr=1.0, warmup_steps=10, total_steps=110)
        assert s.lr_at(0) == pytest.approx(0.1)
        assert s.lr_at(9) == pytest.approx(1.0)
        assert s.lr_at(60) == pytest.approx(0.5)
        assert s.lr_at(110) == 0.0

    def test_cosine_endpoints(self):
        s = CosineDecay(base_lr=1.0, total_steps=100, min_lr=0.1)
        assert s.lr_at(0) == pytest.approx(1.0)
        assert s.lr_at(100) == pytest.approx(0.1)
        assert s.lr_at(50) == pytest.approx(0.55, abs=1e-9)

    def test_apply_mutates_optimizer(self):
        opt = FlatAdam(10, lr=9.0)
        s = ConstantLR(1e-4)
        assert s.apply(opt, 0) == 1e-4
        assert opt.lr == 1e-4

    def test_validation(self):
        with pytest.raises(ValueError):
            ConstantLR(0.0)
        with pytest.raises(ValueError):
            WarmupLinearDecay(1.0, 10, 10)
        with pytest.raises(ValueError):
            CosineDecay(1.0, 100, min_lr=2.0)
        with pytest.raises(ValueError):
            ConstantLR(1.0).apply(FlatAdam(4), -1)


class TestParamGroups:
    def test_groups_have_independent_hyperparams(self):
        decayed = Tensor(np.ones(4, np.float32), requires_grad=True)
        frozen_decay = Tensor(np.ones(4, np.float32), requires_grad=True)
        opt = Adam(
            [
                {"params": [decayed], "weight_decay": 0.5},
                {"params": [frozen_decay], "weight_decay": 0.0},
            ],
            lr=0.1,
        )
        decayed.grad = np.zeros(4, np.float32)
        frozen_decay.grad = np.zeros(4, np.float32)
        for _ in range(20):
            opt.step()
        assert np.all(np.abs(decayed.data) < 1.0)  # shrinks
        np.testing.assert_array_equal(frozen_decay.data, np.ones(4))

    def test_per_group_lr(self):
        fast = Tensor(np.zeros(2, np.float32), requires_grad=True)
        slow = Tensor(np.zeros(2, np.float32), requires_grad=True)
        opt = Adam(
            [
                {"params": [fast], "lr": 1e-1},
                {"params": [slow], "lr": 1e-3},
            ]
        )
        fast.grad = np.ones(2, np.float32)
        slow.grad = np.ones(2, np.float32)
        opt.step()
        assert abs(fast.data[0]) > abs(slow.data[0])

    def test_flat_list_still_works(self):
        t = Tensor(np.ones(3, np.float32), requires_grad=True)
        t.grad = np.ones(3, np.float32)
        Adam([t], lr=0.1).step()
        assert t.data[0] < 1.0

    def test_empty_group_rejected(self):
        with pytest.raises(ValueError):
            Adam([{"params": []}])


class TestGradientAccumulation:
    def test_accumulated_equals_large_batch(self):
        """Averaging K micro-batch gradients equals one K-times-larger
        batch step (same samples), up to float tolerance."""
        rng = RNG(2)
        big = rng.integers(0, 16, (8, 10))
        micro1, micro2 = big[:4], big[4:]

        large = OffloadTrainer(tiny_lm(3), lr=1e-3)
        large.step(big)

        accum = OffloadTrainer(tiny_lm(3), lr=1e-3, accumulation_steps=2)
        r1 = accum.step(micro1)
        r2 = accum.step(micro2)
        assert r1.param_payload_bytes == 0  # banked, no transfer
        assert r2.param_payload_bytes > 0
        np.testing.assert_allclose(
            accum.arena.params, large.arena.params, rtol=1e-4, atol=1e-6
        )

    def test_optimizer_steps_counted_once_per_cycle(self):
        tr = OffloadTrainer(tiny_lm(), accumulation_steps=4)
        tr.train(batches(8))
        assert tr.optimizer.step_count == 2

    def test_invalid_accumulation(self):
        with pytest.raises(ValueError):
            OffloadTrainer(tiny_lm(), accumulation_steps=0)


class TestScheduledTraining:
    def test_schedule_drives_trainer_lr(self):
        sched = WarmupLinearDecay(base_lr=2e-3, warmup_steps=2, total_steps=10)
        tr = OffloadTrainer(tiny_lm(), lr=999.0, lr_schedule=sched)
        tr.train(batches(3))
        assert tr.optimizer.lr == pytest.approx(sched.lr_at(2))

    def test_warmup_training_stable(self):
        sched = WarmupLinearDecay(base_lr=3e-3, warmup_steps=5, total_steps=40)
        tr = OffloadTrainer(tiny_lm(7), lr_schedule=sched)
        results = tr.train(batches(40, seed=8))
        assert results[-1].loss < results[0].loss
        assert all(math.isfinite(r.loss) for r in results)
