"""Differential parity of the pluggable compute-kernel backends.

Every backend in :mod:`repro.core.kernels` must be *bit-exact* against
the scalar reference — same cache stats, same LRU victim tie-breaks,
same write-back order, same DBA bytes, same event-heap pop order.  The
fuzz cases here are the contract that lets ``--kernel`` stay out of
result hashes and cache keys.
"""

import heapq
import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernels import (
    ArrayEventHeap,
    available_backends,
    get_backend,
    jitable,
    numba_available,
    resolve_name,
    set_backend,
    use_backend,
)
from repro.dba.aggregator import Aggregator
from repro.dba.disaggregator import Disaggregator
from repro.dba.registers import DBARegister
from repro.memsim.cache import SetAssociativeCache
from repro.utils.bits import float32_to_words

BACKENDS = list(available_backends())


def _stream(seed, n, span=4096, write_frac=0.4):
    rng = np.random.default_rng(seed)
    addrs = rng.integers(0, span, n, dtype=np.int64)
    writes = rng.random(n) < write_frac
    return addrs, writes


def _cache_state(c):
    return (
        c._tags.copy(),
        c._valid.copy(),
        c._dirty.copy(),
        c._lru.copy(),
        c._tick,
        (c.stats.hits, c.stats.misses, c.stats.evictions, c.stats.writebacks),
    )


class TestRegistry:
    def test_all_three_backends_registered(self):
        assert {"scalar", "numpy", "numba"} <= set(BACKENDS)

    def test_unknown_backend_is_an_error_listing_choices(self):
        with pytest.raises(ValueError, match="scalar"):
            get_backend("fortran")

    def test_resolve_precedence_env_then_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert resolve_name() == "numpy"
        monkeypatch.setenv("REPRO_KERNEL", "scalar")
        assert resolve_name() == "scalar"
        # explicit name beats the environment
        assert resolve_name("numpy") == "numpy"

    def test_use_backend_overrides_and_restores(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        with use_backend("scalar") as b:
            assert b.name == "scalar"
            assert resolve_name() == "scalar"
            # override beats the environment while active
            monkeypatch.setenv("REPRO_KERNEL", "numpy")
            assert resolve_name() == "scalar"
        monkeypatch.delenv("REPRO_KERNEL", raising=False)
        assert resolve_name() == "numpy"

    def test_use_backend_none_is_passthrough(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "scalar")
        with use_backend(None) as b:
            assert b.name == "scalar"

    def test_set_backend_round_trip(self):
        try:
            set_backend("scalar")
            assert resolve_name() == "scalar"
        finally:
            set_backend(None)
        assert resolve_name() == resolve_name(None)

    def test_nested_overrides_restore_in_order(self):
        with use_backend("scalar"):
            with use_backend("numpy"):
                assert resolve_name() == "numpy"
            assert resolve_name() == "scalar"


class TestCacheKernelParity:
    """scalar == numpy == numba on state, stats and per-access outputs."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    @pytest.mark.parametrize(
        "size,line,ways", [(1024, 64, 2), (2048, 64, 8), (512, 32, 1)]
    )
    def test_block_access_fuzz(self, seed, size, line, ways):
        addrs, writes = _stream(seed, 700, span=size * 3)
        outs = {}
        for name in BACKENDS:
            c = SetAssociativeCache(size, line_bytes=line, ways=ways)
            with use_backend(name):
                r = c.access_block(addrs, writes)
            outs[name] = (r.hits.copy(), r.writeback_address.copy(), _cache_state(c))
        ref_hits, ref_wb, ref_state = outs["scalar"]
        for name in BACKENDS:
            hits, wb, state = outs[name]
            np.testing.assert_array_equal(hits, ref_hits, err_msg=name)
            np.testing.assert_array_equal(wb, ref_wb, err_msg=name)
            for a, b in zip(state, ref_state):
                np.testing.assert_array_equal(a, b, err_msg=name)

    def test_block_matches_scalar_access_loop(self):
        """The batch path equals per-address ``access`` calls exactly."""
        addrs, writes = _stream(7, 400, span=4096)
        loop = SetAssociativeCache(1024, ways=4)
        loop_hits, loop_wb = [], []
        for a, w in zip(addrs, writes):
            r = loop.access(int(a), bool(w))
            loop_hits.append(r.hit)
            loop_wb.append(-1 if r.writeback_address is None else r.writeback_address)
        for name in BACKENDS:
            c = SetAssociativeCache(1024, ways=4)
            with use_backend(name):
                r = c.access_block(addrs, writes)
            np.testing.assert_array_equal(r.hits, loop_hits, err_msg=name)
            np.testing.assert_array_equal(
                r.writeback_address, loop_wb, err_msg=name
            )
            for a, b in zip(_cache_state(c), _cache_state(loop)):
                np.testing.assert_array_equal(a, b, err_msg=name)

    def test_lru_tie_break_prefers_lowest_way(self):
        """Fresh ways all tie at lru=0: the victim must be way 0 (then 1,
        ...) under every backend — the invalid-way-first rule, then the
        lowest-index LRU-min rule."""
        # 2 sets x 2 ways of 64B lines; hammer set 0 with conflicting tags.
        addrs = np.array([0, 128, 256, 384, 512], dtype=np.int64)  # set 0 tags 0..4
        writes = np.ones(5, dtype=bool)
        for name in BACKENDS:
            c = SetAssociativeCache(256, line_bytes=64, ways=2)
            with use_backend(name):
                r = c.access_block(addrs, writes)
            # tags 0,1 fill the ways; tag 2 evicts tag 0 (way 0), tag 3
            # evicts tag 1 (way 1), tag 4 evicts tag 2 (way 0 again).
            np.testing.assert_array_equal(
                r.writeback_address, [-1, -1, 0, 128, 256], err_msg=name
            )

    def test_jitable_kernel_matches_numpy_directly(self):
        """The undecorated jitable body (what numba compiles) is itself
        bit-exact — so JIT compilation can only change speed."""
        addrs, writes = _stream(11, 300, span=2048)
        c = SetAssociativeCache(512, ways=2)
        hits = np.empty(addrs.size, dtype=bool)
        wb = np.empty(addrs.size, dtype=np.int64)
        h, m, e, w = jitable.cache_block_kernel(
            c._tags, c._valid, c._dirty, c._lru, c.n_sets, c._line_shift,
            c._tick, addrs >> c._line_shift, np.ascontiguousarray(writes),
            hits, wb,
        )
        c._tick += addrs.size
        c.stats.hits += int(h)
        c.stats.misses += int(m)
        c.stats.evictions += int(e)
        c.stats.writebacks += int(w)
        ref = SetAssociativeCache(512, ways=2)
        with use_backend("numpy"):
            r = ref.access_block(addrs, writes)
        np.testing.assert_array_equal(hits, r.hits)
        np.testing.assert_array_equal(wb, r.writeback_address)
        for a, b in zip(_cache_state(c), _cache_state(ref)):
            np.testing.assert_array_equal(a, b)


def _register(n_bytes):
    """DBA register with ``effective_dirty_bytes == n_bytes``."""
    if n_bytes == 4:
        return DBARegister(enabled=False)  # bypass: full 4-byte words
    return DBARegister(enabled=True, dirty_bytes=n_bytes)


class TestDBAKernelParity:
    @pytest.mark.parametrize("n_bytes", [1, 2, 3, 4])
    @pytest.mark.parametrize("name", BACKENDS)
    def test_pack_matches_scalar_reference(self, n_bytes, name):
        rng = np.random.default_rng(n_bytes)
        lines = rng.standard_normal((5, 16)).astype(np.float32)
        fast, ref = Aggregator(_register(n_bytes)), Aggregator(_register(n_bytes))
        with use_backend(name):
            payload = fast.pack_lines(lines)
        expected = ref.pack_lines_scalar(lines)
        np.testing.assert_array_equal(payload, expected)
        assert fast.lines_processed == ref.lines_processed
        assert fast.payload_bytes_produced == ref.payload_bytes_produced

    @pytest.mark.parametrize("n_bytes", [1, 2, 3, 4])
    @pytest.mark.parametrize("name", BACKENDS)
    def test_merge_matches_scalar_reference(self, n_bytes, name):
        rng = np.random.default_rng(100 + n_bytes)
        stale = rng.standard_normal((4, 16)).astype(np.float32)
        fresh = rng.standard_normal((4, 16)).astype(np.float32)
        reg = _register(n_bytes)
        with use_backend(name):
            payload = Aggregator(reg).pack_lines(fresh)
            fast = Disaggregator(reg)
            merged = fast.merge_lines(stale, payload)
        ref = Disaggregator(reg)
        expected = ref.merge_lines_scalar(stale, payload)
        np.testing.assert_array_equal(
            merged.view(np.uint32), expected.view(np.uint32)
        )
        assert fast.lines_merged == ref.lines_merged
        assert fast.extra_reads == ref.extra_reads

    @pytest.mark.parametrize("name", BACKENDS)
    def test_full_low_bytes_round_trip(self, name):
        """Bypass (4 effective bytes) replaces every word: the merge
        reconstructs ``fresh`` exactly."""
        rng = np.random.default_rng(5)
        stale = rng.standard_normal((3, 16)).astype(np.float32)
        fresh = rng.standard_normal((3, 16)).astype(np.float32)
        reg = _register(4)
        with use_backend(name):
            payload = Aggregator(reg).pack_lines(fresh)
            merged = Disaggregator(reg).merge_lines(stale, payload)
        np.testing.assert_array_equal(merged, fresh)

    def test_pack_words_against_jitable(self):
        rng = np.random.default_rng(9)
        words = float32_to_words(
            rng.standard_normal((6, 16)).astype(np.float32)
        )
        for n_bytes in (1, 2, 3):
            out = np.empty((6, 16 * n_bytes), dtype=np.uint8)
            jitable.dba_pack_kernel(words, n_bytes, out)
            np.testing.assert_array_equal(
                out, get_backend("numpy").dba_pack(words, n_bytes)
            )


class TestEventHeapParity:
    @given(st.lists(st.floats(0, 1e3, allow_nan=False), min_size=0, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_pop_order_matches_heapq(self, times):
        """(time, seq) min-order with unique seqs == heapq, ties included."""
        ref = []
        heap = ArrayEventHeap(jitable.heap_push, jitable.heap_pop, capacity=4)
        for seq, t in enumerate(times):
            heapq.heappush(ref, (t, seq, f"item{seq}"))
            heap.push(t, seq, f"item{seq}")
        assert len(heap) == len(ref)
        while len(heap):
            assert heap.peek_time() == ref[0][0]
            assert heap.pop() == heapq.heappop(ref)
        assert heap.peek_time() == float("inf")

    def test_interleaved_push_pop(self):
        rng = np.random.default_rng(3)
        ref, heap = [], ArrayEventHeap(jitable.heap_push, jitable.heap_pop)
        seq = 0
        for _ in range(500):
            if ref and rng.random() < 0.4:
                assert heap.pop() == heapq.heappop(ref)
            else:
                t = float(rng.random())
                heapq.heappush(ref, (t, seq, seq))
                heap.push(t, seq, seq)
                seq += 1
        while ref:
            assert heap.pop() == heapq.heappop(ref)


class TestSimulatorBackendParity:
    def _delivery_log(self, kernel):
        from repro.sim.engine import Simulator

        sim = Simulator(kernel=kernel)
        log = []

        def proc(sim, tag, delays):
            for d in delays:
                yield sim.timeout(d)
                log.append((round(sim.now, 12), tag))

        rng = np.random.default_rng(17)
        for tag in range(6):
            sim.process(proc(sim, tag, rng.random(40).tolist()))
        sim.run()
        return log, sim.now

    def test_event_order_identical_across_backends(self):
        ref_log, ref_end = self._delivery_log("numpy")
        for name in BACKENDS:
            log, end = self._delivery_log(name)
            assert log == ref_log, name
            assert end == ref_end, name


class TestNumbaFallback:
    def test_graceful_degradation_without_numba(self):
        """Absent numba, the 'numba' backend delegates to numpy with a
        one-time RuntimeWarning — results never differ."""
        if numba_available():
            pytest.skip("numba installed: fallback path not reachable")
        b = get_backend("numba")
        assert b.jit is False
        addrs, writes = _stream(1, 50)
        c1 = SetAssociativeCache(512, ways=2)
        c2 = SetAssociativeCache(512, ways=2)
        with use_backend("numba"):
            r1 = c1.access_block(addrs, writes)
        with use_backend("numpy"):
            r2 = c2.access_block(addrs, writes)
        np.testing.assert_array_equal(r1.hits, r2.hits)
        np.testing.assert_array_equal(r1.writeback_address, r2.writeback_address)
        for a, b in zip(_cache_state(c1), _cache_state(c2)):
            np.testing.assert_array_equal(a, b)

    def test_jit_flag_reflects_availability(self):
        assert get_backend("numba").jit == numba_available()
        assert get_backend("scalar").jit is False
        assert get_backend("numpy").jit is False


class TestHierarchyStatsAtSeam:
    """Satellite audit: hierarchy stats merging is backend-invariant."""

    def _run(self, name):
        from repro.memsim.hierarchy import CacheHierarchy

        h = CacheHierarchy(
            [
                SetAssociativeCache(512, ways=2, name="l1"),
                SetAssociativeCache(2048, ways=4, name="l2"),
            ]
        )
        addrs, writes = _stream(23, 600, span=8192)
        with use_backend(name):
            r = h.access_block(addrs, writes)
        stats = [
            (c.stats.hits, c.stats.misses, c.stats.evictions, c.stats.writebacks)
            for c in h.levels
        ]
        return (
            r.hit_levels.copy(),
            r.memory_writebacks.copy(),
            stats,
            h.memory_reads,
            h.memory_writes,
        )

    def test_per_level_stats_identical_across_backends(self):
        ref = self._run("scalar")
        for name in BACKENDS:
            got = self._run(name)
            np.testing.assert_array_equal(got[0], ref[0], err_msg=name)
            np.testing.assert_array_equal(got[1], ref[1], err_msg=name)
            assert got[2:] == ref[2:], name

    def test_batch_stats_equal_scalar_access_loop(self):
        """Block stats == summing per-access scalar stats (the regression
        fence on the seam's stats merge)."""
        from repro.memsim.hierarchy import CacheHierarchy

        def fresh():
            return CacheHierarchy(
                [
                    SetAssociativeCache(256, ways=2, name="l1"),
                    SetAssociativeCache(1024, ways=4, name="l2"),
                ]
            )

        addrs, writes = _stream(29, 500, span=4096)
        loop = fresh()
        for a, w in zip(addrs, writes):
            loop.access(int(a), bool(w))
        batch = fresh()
        batch.access_block(addrs, writes)
        for lc, bc in zip(loop.levels, batch.levels):
            assert (lc.stats.hits, lc.stats.misses, lc.stats.evictions,
                    lc.stats.writebacks) == (
                bc.stats.hits, bc.stats.misses, bc.stats.evictions,
                bc.stats.writebacks,
            )
        assert loop.memory_reads == batch.memory_reads
        assert loop.memory_writes == batch.memory_writes


class TestEnvSelection:
    def test_env_var_reaches_simulator(self, monkeypatch):
        from repro.sim.engine import Simulator

        monkeypatch.setenv("REPRO_KERNEL", "scalar")
        assert Simulator().kernel == "scalar"
        monkeypatch.delenv("REPRO_KERNEL")
        assert Simulator().kernel == "numpy"

    def test_subprocess_env_selection(self):
        import subprocess
        import sys

        env = dict(os.environ, REPRO_KERNEL="scalar")
        env["PYTHONPATH"] = "src"
        out = subprocess.run(
            [sys.executable, "-c",
             "from repro.core.kernels import resolve_name; print(resolve_name())"],
            capture_output=True, text=True, env=env, cwd=os.path.dirname(
                os.path.dirname(os.path.abspath(__file__))),
        )
        assert out.stdout.strip() == "scalar"
