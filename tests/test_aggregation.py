"""Tests for in-fabric gradient aggregation and its wire formats."""

import numpy as np
import pytest

from repro.interconnect.aggregation import (
    FP8_E4M3_MAX,
    EncodedTensor,
    FabricReducer,
    WireFormat,
    aggregate_streams,
    decode_tensor,
    encode_tensor,
    wire_bytes_for,
    wire_roundtrip,
)
from repro.interconnect.fabric import CXLFabric, FabricParams
from repro.models import get_model
from repro.obs import Metrics, Tracer
from repro.offload.cluster import ClusterEngine
from repro.offload.engines import SystemKind
from repro.offload.parallel import ClusterParams, DataParallelEngine
from repro.sim import Simulator

ALL_FORMATS = ("fp32", "fp16", "bf16", "fp8-e4m3", "int8-dba")


def _grad(n=2000, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal(n) * scale).astype(np.float32)


class TestWireFormat:
    def test_parse_roundtrip(self):
        for name in ALL_FORMATS:
            fmt = WireFormat.parse(name)
            assert fmt.value == name
            assert WireFormat.parse(fmt) is fmt

    def test_parse_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown wire format"):
            WireFormat.parse("fp4")

    def test_bytes_per_value_ordering(self):
        bpv = {f: WireFormat.parse(f).bytes_per_value for f in ALL_FORMATS}
        assert bpv["fp32"] == 4
        assert bpv["fp16"] == bpv["bf16"] == 2
        assert bpv["fp8-e4m3"] == bpv["int8-dba"] == 1

    def test_wire_bytes(self):
        assert WireFormat.FP32.wire_bytes(1000) == 4000
        assert WireFormat.FP16.wire_bytes(1000) == 2000
        # INT8 carries a 4-byte FP32 scale side channel.
        assert WireFormat.INT8_DBA.wire_bytes(1000) == 1004
        with pytest.raises(ValueError):
            WireFormat.FP32.wire_bytes(-1)

    def test_wire_bytes_for_fp32_sizes(self):
        assert wire_bytes_for(4000, "fp32") == 4000
        assert wire_bytes_for(4000, "bf16") == 2000
        assert wire_bytes_for(4000, "fp8-e4m3") == 1000
        assert wire_bytes_for(4000, "int8-dba") == 1004
        with pytest.raises(ValueError):
            wire_bytes_for(-1, "fp32")


class TestEncodeDecode:
    def test_fp32_is_bit_exact(self):
        x = _grad()
        enc = encode_tensor(x, "fp32")
        assert isinstance(enc, EncodedTensor)
        np.testing.assert_array_equal(decode_tensor(enc), x)
        assert enc.wire_bytes == x.nbytes

    def test_fp16_error_bound(self):
        x = _grad()
        y = wire_roundtrip(x, "fp16")
        # IEEE half, round-to-nearest: rel err <= 2^-11 in normal range.
        assert np.max(np.abs(y - x) / np.abs(x)) <= 2**-11

    def test_bf16_error_bound(self):
        x = _grad()
        y = wire_roundtrip(x, "bf16")
        # Mantissa truncation to 7 bits: rel err < 2^-7, one-sided
        # (|decoded| <= |x|).
        assert np.max(np.abs(y - x) / np.abs(x)) < 2**-7
        assert np.all(np.abs(y) <= np.abs(x))

    def test_fp8_error_bound(self):
        x = _grad()
        y = wire_roundtrip(x, "fp8-e4m3")
        normal = np.abs(x) >= 2**-6  # above the subnormal range
        rel = np.abs(y[normal] - x[normal]) / np.abs(x[normal])
        # 3 mantissa bits, nearest rounding: rel err <= 2^-4.
        assert np.max(rel) <= 2**-4

    def test_fp8_worst_cases(self):
        # Saturation at +-448, signed zero, NaN preservation.
        x = np.array(
            [1e9, -1e9, FP8_E4M3_MAX, -FP8_E4M3_MAX, 0.0, np.nan],
            dtype=np.float32,
        )
        y = wire_roundtrip(x, "fp8-e4m3")
        np.testing.assert_array_equal(y[:5], [448.0, -448.0, 448.0, -448.0, 0.0])
        assert np.isnan(y[5])

    def test_fp8_exact_on_codebook_values(self):
        # Every representable value must round-trip exactly.
        grid = np.array(
            [0.5, 1.0, 1.125, 2.0, 3.5, 448.0, -0.875, 2**-6, 2**-9],
            dtype=np.float32,
        )
        np.testing.assert_array_equal(wire_roundtrip(grid, "fp8-e4m3"), grid)

    def test_int8_error_bound_worst_case(self):
        # Symmetric per-tensor INT8: worst case error is scale/2, with
        # scale set by the peak — a single outlier degrades everything.
        x = _grad()
        x[0] = 100.0  # outlier blows up the scale
        y = wire_roundtrip(x, "int8-dba")
        scale = 100.0 / 127.0
        assert np.max(np.abs(y - x)) <= scale / 2 + 1e-6
        # ...and typical values really do see near-worst-case error.
        assert np.max(np.abs(y[1:] - x[1:])) > scale / 10

    def test_int8_rejects_non_finite(self):
        x = _grad()
        x[5] = np.inf
        with pytest.raises(ValueError, match="finite"):
            encode_tensor(x, "int8-dba")

    def test_int8_payload_rides_dba_pack_path(self):
        # The INT8 payload must byte-for-byte equal the quantized lanes.
        from repro.compression.quant import quantize_int8

        x = _grad(256)
        enc = encode_tensor(x, "int8-dba")
        q = quantize_int8(x)
        np.testing.assert_array_equal(
            enc.payload.reshape(-1)[: x.size].view(np.int8), q.values
        )
        assert enc.scale == q.scale

    def test_shape_preserved(self):
        x = _grad(24).reshape(4, 6)
        for fmt in ALL_FORMATS:
            assert wire_roundtrip(x, fmt).shape == (4, 6)

    def test_error_ladder_monotone(self):
        """Wider formats are never less accurate on a generic gradient."""
        x = _grad(5000, seed=3)
        errs = {
            f: float(np.max(np.abs(wire_roundtrip(x, f) - x)))
            for f in ALL_FORMATS
        }
        assert errs["fp32"] == 0.0
        assert errs["fp16"] <= errs["bf16"] <= errs["fp8-e4m3"]


class TestAggregateStreams:
    def test_sum_matches_per_stream_roundtrip(self):
        streams = [_grad(512, seed=s) for s in range(4)]
        total, acct = aggregate_streams(streams, "bf16")
        ref = np.sum([wire_roundtrip(s, "bf16") for s in streams], axis=0)
        np.testing.assert_allclose(total, ref, rtol=0, atol=0)
        assert acct["in_bytes"] == 4 * 1024
        assert acct["out_bytes"] == 1024
        assert acct["n_streams"] == 4

    def test_fp32_is_exact_sum(self):
        streams = [_grad(128, seed=s) for s in range(3)]
        total, _ = aggregate_streams(streams, "fp32")
        np.testing.assert_array_equal(
            total, streams[0] + streams[1] + streams[2]
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            aggregate_streams([], "fp32")
        with pytest.raises(ValueError, match="share one shape"):
            aggregate_streams([_grad(8), _grad(9)], "fp32")


class TestFabricReducer:
    def _fabric(self, sim, n_ports=4, **kw):
        return CXLFabric(sim, FabricParams(n_ports=n_ports, **kw))

    def test_pool_carries_reduced_not_per_rank_bytes(self):
        sim = Simulator()
        fabric = self._fabric(sim)
        red = fabric.reducer(ranks=range(4))
        n = 16 * 2**20
        ev = red.reduce(n)
        sim.run()
        assert ev.triggered
        assert red.bytes_in == 4 * n
        assert red.bytes_out == n  # the pool boundary sees ONE stream
        stats = fabric.stats
        assert stats.reduce_in_bytes == 4 * n
        assert stats.reduce_out_bytes == n
        # every rank's port accounted its own stream
        for p in range(4):
            assert stats.port_bytes[p] == n

    def test_reduce_wait_accounts_rank_skew(self):
        # All ranks start together but serialize through the shared
        # switch, so early cells wait for the last rank's at the barrier.
        sim = Simulator()
        fabric = self._fabric(sim)
        red = fabric.reducer(ranks=range(4))
        red.reduce(8 * 2**20)
        sim.run()
        assert fabric.stats.reduce_wait > 0.0

    def test_more_ranks_take_longer(self):
        times = []
        for r in (1, 2, 4, 8):
            sim = Simulator()
            fabric = self._fabric(sim, n_ports=8)
            fabric.reducer(ranks=range(r)).reduce(8 * 2**20)
            sim.run()
            times.append(sim.now)
        assert times == sorted(times)
        assert times[0] < times[-1]

    def test_small_transfer_single_cell(self):
        sim = Simulator()
        fabric = self._fabric(sim)
        red = fabric.reducer(ranks=[0, 1])
        red.reduce(1024)  # below MIN_CELL_BYTES
        sim.run()
        assert red.bytes_out == 1024

    def test_spans_and_metrics(self):
        tracer, metrics = Tracer(), Metrics()
        sim = Simulator(tracer=tracer, metrics=metrics)
        fabric = self._fabric(sim)
        red = fabric.reducer(ranks=range(4))
        n = 16 * 2**20
        red.reduce(n)
        sim.run()
        names = {s.name for s in tracer.spans if s.cat == "fabric"}
        assert "fabric-reduce" in names
        assert "reduce-wait" in names
        counters = metrics.counters()
        assert counters["fabric.reduce.in_bytes"] == 4 * n
        assert counters["fabric.reduce.out_bytes"] == n

    def test_validation(self):
        sim = Simulator()
        fabric = self._fabric(sim)
        with pytest.raises(ValueError, match="at least one rank"):
            FabricReducer(fabric, [])
        with pytest.raises(ValueError, match="out of range"):
            FabricReducer(fabric, [99])
        with pytest.raises(ValueError, match="tenant"):
            FabricReducer(fabric, [0], tenant=5)
        red = fabric.reducer(ranks=[0])
        with pytest.raises(ValueError, match="non-negative"):
            red.reduce(-1)

    def test_zero_stats_without_reducer(self):
        sim = Simulator()
        fabric = self._fabric(sim)

        def go(sim, link):
            yield link.transmit(2**20)

        sim.process(go(sim, fabric.port(0, 0)))
        sim.run()
        snap = fabric.stats.snapshot()
        assert snap["reduce_in_bytes"] == 0.0
        assert snap["reduce_out_bytes"] == 0.0
        assert snap["reduce_wait"] == 0.0


class TestReduceInFabricEngines:
    @pytest.fixture(scope="class")
    def bert(self):
        return get_model("bert-large-cased")

    def test_wire_bytes_monotone_in_format(self, bert):
        """Acceptance: FP32 > FP16/BF16 > FP8/INT8-DBA wire bytes."""
        wire = {}
        for fmt in ALL_FORMATS:
            eng = DataParallelEngine(
                SystemKind.TECO_REDUCTION,
                bert,
                8,
                ClusterParams(n_gpus=4),
                reduce_in_fabric=True,
                grad_wire_format=fmt,
            )
            wire[fmt] = eng.simulate_step().wire_bytes
        assert wire["fp32"] > wire["fp16"] == wire["bf16"]
        assert wire["fp16"] > wire["fp8-e4m3"]
        assert wire["fp16"] > wire["int8-dba"]

    def test_low_bit_formats_cut_step_time(self, bert):
        totals = {}
        for fmt in ("fp32", "fp8-e4m3"):
            eng = DataParallelEngine(
                SystemKind.TECO_REDUCTION,
                bert,
                8,
                ClusterParams(n_gpus=4),
                reduce_in_fabric=True,
                grad_wire_format=fmt,
            )
            totals[fmt] = eng.simulate_step().total
        assert totals["fp8-e4m3"] < totals["fp32"]

    def test_dp_engine_disabled_path_unchanged(self, bert):
        a = DataParallelEngine(
            SystemKind.TECO_REDUCTION, bert, 8, ClusterParams(n_gpus=4)
        ).simulate_step()
        b = DataParallelEngine(
            SystemKind.TECO_REDUCTION,
            bert,
            8,
            ClusterParams(n_gpus=4),
            reduce_in_fabric=False,
            grad_wire_format="fp8-e4m3",
        ).simulate_step()
        assert a == b

    def test_cluster_engine_reduce_stats_populated(self, bert):
        eng = ClusterEngine(
            SystemKind.TECO_REDUCTION,
            bert,
            8,
            ClusterParams(n_gpus=2),
            n_hosts=2,
            n_tenants=2,
            policy="fair",
            reduce_in_fabric=True,
            grad_wire_format="fp16",
        )
        res = eng.simulate_step()
        assert len(res.tenant_reduce_in_bytes) == 2
        # each tenant: 2 ranks x encoded full gradient (FP16 = half).
        expected = bert.gradient_bytes / 2 * 2
        for got in res.tenant_reduce_in_bytes:
            assert got == pytest.approx(expected)
        for got in res.tenant_reduce_out_bytes:
            assert got == pytest.approx(bert.gradient_bytes / 2)
        assert res.reduce_in_bytes == sum(res.tenant_reduce_in_bytes)

    def test_cluster_engine_runs_all_formats_both_kinds(self, bert):
        for kind in (SystemKind.TECO_REDUCTION, SystemKind.ZERO_OFFLOAD):
            for fmt in ALL_FORMATS:
                res = ClusterEngine(
                    kind,
                    bert,
                    4,
                    ClusterParams(n_gpus=2),
                    n_hosts=2,
                    n_tenants=1,
                    reduce_in_fabric=True,
                    grad_wire_format=fmt,
                ).simulate_step()
                assert res.makespan > 0

    def test_cluster_disabled_bit_identical_to_pr6(self, bert):
        """Acceptance: reduce_in_fabric off reproduces the PR 6
        breakdown bit-for-bit (golden values captured pre-change)."""
        res = ClusterEngine(
            SystemKind.TECO_REDUCTION,
            bert,
            8,
            ClusterParams(n_gpus=2),
            n_hosts=2,
            n_tenants=2,
            policy="fair",
        ).simulate_step()
        t0, t1 = res.tenants
        assert t0.forward == 0.0520240798629888
        assert t0.backward == 0.10404815972597761
        assert t0.grad_transfer_exposed == 0.0007818873693352657
        assert t0.grad_clip == 0.017238709677419355
        assert t0.optimizer == 0.06033548387096843
        assert t0.param_transfer_exposed == 0.0005937321273758733
        assert t0.wire_bytes == 2171000000.0
        assert t0.wire_bytes_per_link == 1085500000.0
        assert t1.grad_transfer_exposed == 0.0007935513599223454
        assert t1.param_transfer_exposed == 0.0005882431906290286
        assert res.tenant_switch_wait == (
            0.010890050506641595,
            0.023887852723260432,
        )
        assert res.tenant_pool_wait == (0.0, 0.0)
        assert res.tenant_bytes == (1085500000.0, 1085500000.0)
        assert res.port_bytes == (1085500000.0, 1085500000.0)
        assert res.tenant_reduce_in_bytes == ()
        assert res.tenant_reduce_out_bytes == ()
        assert res.tenant_reduce_wait == ()


class TestGradTransformHook:
    def _train(self, grad_transform=None, n=6):
        from repro.experiments.runner import finetune, pretrained_lm
        from repro.offload import TrainerMode

        setup = pretrained_lm(seed=0, finetune_batches=n)
        tr = finetune(
            setup,
            TrainerMode.TECO_REDUCTION,
            seed=1,
            grad_transform=grad_transform,
        )
        return [r.loss for r in tr.history], tr

    def test_identity_transform_bit_identical(self):
        base, _ = self._train(None)
        ident, _ = self._train(lambda g: g)
        assert base == ident

    def test_fp32_roundtrip_bit_identical(self):
        base, _ = self._train(None)
        fp32, _ = self._train(lambda g: wire_roundtrip(g, "fp32"))
        assert base == fp32

    def test_low_bit_transform_changes_training(self):
        base, _ = self._train(None)
        int8, _ = self._train(lambda g: wire_roundtrip(g, "int8-dba"))
        assert base != int8

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            self._train(lambda g: g[:-1], n=1)
