"""Tests for the GPU-memory accounting and datacenter-cost models."""

import pytest

from repro.experiments.cost_model import DatacenterCost, paper_estimate
from repro.models import evaluation_models, get_model
from repro.offload.memory import MemoryModel


class TestMemoryModel:
    def test_paper_configs_fit(self):
        """Every batch size the paper evaluates fits in 32 GB — 'the
        batch sizes are chosen ... such that out-of-memory does not
        happen'."""
        mm = MemoryModel()
        for spec in evaluation_models():
            batches = (4, 8, 16) if spec.name != "gcnii" else (1,)
            for b in batches:
                if spec.name == "t5-large" and b == 16:
                    continue
                assert mm.gpu_budget(spec, b).fits, (spec.name, b)

    def test_t5_oom_at_batch16_derives(self):
        """At T5's full training sequence length with FP32 activations,
        batch 16 exceeds the V100's 32 GB while batch 8 fits — deriving
        the paper's Section VIII-B OOM observation."""
        t5 = get_model("t5-large")
        mm = MemoryModel(mixed_precision=False)
        assert mm.gpu_budget(t5, 8, seq_len=512).fits
        assert not mm.gpu_budget(t5, 16, seq_len=512).fits

    def test_components_sum(self):
        mm = MemoryModel()
        budget = mm.gpu_budget(get_model("gpt2"), 4)
        assert budget.required_bytes == pytest.approx(
            sum(budget.components.values())
        )
        assert 0 < budget.utilization < 1

    def test_activations_scale_with_batch(self):
        mm = MemoryModel()
        bert = get_model("bert-large-cased")
        a4 = mm.activation_bytes(bert, 4)
        a8 = mm.activation_bytes(bert, 8)
        assert a8 == pytest.approx(2 * a4)

    def test_attention_maps_quadratic_in_seq(self):
        mm = MemoryModel()
        bert = get_model("bert-large-cased")
        a128 = mm.activation_bytes(bert, 4, seq_len=128)
        a256 = mm.activation_bytes(bert, 4, seq_len=256)
        assert a256 > 2 * a128  # superlinear: the s^2 attention term

    def test_cpu_side_footprint(self):
        mm = MemoryModel()
        bert = get_model("bert-large-cased")
        # params + grads + 2x ADAM states = 4x param bytes
        assert mm.cpu_bytes(bert) == pytest.approx(4 * bert.param_bytes)

    def test_max_batch_monotone_with_capacity(self):
        bert = get_model("bert-large-cased")
        small = MemoryModel(gpu_capacity_bytes=8 * 2**30)
        large = MemoryModel(gpu_capacity_bytes=32 * 2**30)
        assert small.max_batch(bert) <= large.max_batch(bert)

    def test_gnn_batch_independent(self):
        mm = MemoryModel()
        gcnii = get_model("gcnii")
        assert mm.activation_bytes(gcnii, 1) == mm.activation_bytes(gcnii, 8)

    def test_validation(self):
        with pytest.raises(ValueError):
            MemoryModel(gpu_capacity_bytes=0)
        with pytest.raises(ValueError):
            MemoryModel().activation_bytes(get_model("gpt2"), 0)


class TestCostModel:
    def test_paper_estimate_band(self):
        """The 'roughly $900K' figure: 7% saving on a 256-GPU fleet."""
        assert 0.6e6 < paper_estimate(0.07) < 1.1e6

    def test_linear_in_saving(self):
        assert paper_estimate(0.14) == pytest.approx(2 * paper_estimate(0.07))

    def test_spend_arithmetic(self):
        dc = DatacenterCost(
            n_gpus=10, utilization=0.5, price_per_gpu_hour=2.0
        )
        assert dc.yearly_training_spend == pytest.approx(10 * 8760 * 0.5 * 2.0)

    def test_training_share(self):
        full = DatacenterCost(training_share=1.0)
        fifth = DatacenterCost(training_share=0.2)
        assert fifth.yearly_training_spend == pytest.approx(
            full.yearly_training_spend * 0.2
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            DatacenterCost(n_gpus=0)
        with pytest.raises(ValueError):
            DatacenterCost(utilization=0)
        with pytest.raises(ValueError):
            DatacenterCost().yearly_savings(2.0)
