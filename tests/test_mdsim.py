"""Tests for the Lennard-Jones melt and its offload adaptation."""

import numpy as np
import pytest

from repro.mdsim import (
    LJParams,
    MDOffloadModel,
    MDOffloadSimulation,
    compute_forces,
    cubic_lattice,
    potential_energy,
    velocity_verlet_step,
)
from repro.mdsim.integrate import initialize_velocities, kinetic_energy
from repro.mdsim.lj import neighbor_pairs
from repro.offload.timing import HardwareParams


class TestLattice:
    def test_counts_and_density(self):
        pos, box = cubic_lattice(4, density=0.8442)
        assert pos.shape == (64, 3)
        assert 64 / box**3 == pytest.approx(0.8442)

    def test_invalid(self):
        with pytest.raises(ValueError):
            cubic_lattice(0)
        with pytest.raises(ValueError):
            cubic_lattice(3, density=-1)


class TestForces:
    def test_two_atom_force_matches_analytic(self):
        params = LJParams()
        r = 1.2
        pos = np.array([[0.0, 0, 0], [r, 0, 0]])
        forces, energy = compute_forces(pos, box=100.0, params=params)
        s6 = (1.0 / r) ** 6
        sc6 = (1.0 / params.rcut) ** 6
        expected_e = 4 * (s6**2 - s6) - 4 * (sc6**2 - sc6)
        expected_f = 24 * (2 * s6**2 - s6) / r
        assert energy == pytest.approx(expected_e, rel=1e-12)
        assert forces[0, 0] == pytest.approx(-expected_f, rel=1e-12)
        assert forces[1, 0] == pytest.approx(expected_f, rel=1e-12)

    def test_newton_third_law(self):
        rng = np.random.default_rng(0)
        pos, box = cubic_lattice(3)
        pos += rng.normal(0, 0.05, pos.shape)
        forces, _ = compute_forces(pos % box, box)
        np.testing.assert_allclose(forces.sum(axis=0), np.zeros(3), atol=1e-9)

    def test_cutoff_respected(self):
        pos = np.array([[0.0, 0, 0], [3.0, 0, 0]])  # beyond rcut=2.5
        forces, energy = compute_forces(pos, box=100.0)
        assert energy == 0.0
        np.testing.assert_array_equal(forces, 0.0)

    def test_cell_list_matches_all_pairs(self):
        """Cell-list neighbor search must produce identical forces to the
        brute-force path (which small boxes fall back to)."""
        rng = np.random.default_rng(1)
        pos, box = cubic_lattice(5)  # large enough for >=3 cells per side
        pos = (pos + rng.normal(0, 0.1, pos.shape)) % box
        f_cell, e_cell = compute_forces(pos, box)
        # brute force reference
        n = pos.shape[0]
        iu, ju = np.triu_indices(n, k=1)
        delta = pos[iu] - pos[ju]
        delta -= box * np.round(delta / box)
        r2 = np.sum(delta**2, axis=1)
        mask = r2 < 2.5**2
        s6 = (1.0 / r2[mask]) ** 3
        sc6 = (1.0 / 2.5) ** 6
        e_ref = float(np.sum(4 * (s6**2 - s6) - 4 * (sc6**2 - sc6)))
        assert e_cell == pytest.approx(e_ref, rel=1e-10)

    def test_minimum_image(self):
        """Atoms near opposite box faces interact through the boundary."""
        box = 10.0
        pos = np.array([[0.1, 5, 5], [9.9, 5, 5]])  # distance 0.2 via PBC
        _, energy = compute_forces(pos, box)
        assert energy > 0  # strongly repulsive at r=0.2

    def test_neighbor_pairs_cover_cutoff(self):
        rng = np.random.default_rng(2)
        pos, box = cubic_lattice(5)
        pos = (pos + rng.normal(0, 0.1, pos.shape)) % box
        i, j = neighbor_pairs(pos, box, 2.5)
        listed = set(zip(i.tolist(), j.tolist()))
        n = pos.shape[0]
        for a in range(0, n, 7):
            for b in range(a + 1, n, 11):
                delta = pos[a] - pos[b]
                delta -= box * np.round(delta / box)
                if np.sum(delta**2) < 2.5**2:
                    assert (a, b) in listed or (b, a) in listed


class TestIntegration:
    def test_energy_conservation(self):
        """NVE velocity Verlet conserves total energy to ~1e-3 over a
        short melt run."""
        rng = np.random.default_rng(3)
        pos, box = cubic_lattice(4)
        vel = initialize_velocities(pos.shape[0], 1.44, rng)
        forces, pe = compute_forces(pos, box)
        e0 = pe + kinetic_energy(vel)
        for _ in range(50):
            pos, vel, forces, pe = velocity_verlet_step(
                pos, vel, forces, box, dt=0.002
            )
        e1 = pe + kinetic_energy(vel)
        assert abs(e1 - e0) / abs(e0) < 5e-3

    def test_momentum_zeroed(self):
        rng = np.random.default_rng(4)
        v = initialize_velocities(100, 1.0, rng)
        np.testing.assert_allclose(v.mean(axis=0), np.zeros(3), atol=1e-12)

    def test_invalid_dt(self):
        pos, box = cubic_lattice(2)
        with pytest.raises(ValueError):
            velocity_verlet_step(pos, pos * 0, pos * 0, box, dt=0)


class TestMDOffload:
    def test_runs_and_tracks_volume(self):
        sim = MDOffloadSimulation(n_side=3, dba=False)
        sim.run(5)
        assert len(sim.history) == 5
        assert sim.volume_reduction() == 0.0

    def test_dba_reduces_position_volume(self):
        sim = MDOffloadSimulation(n_side=3, dba=True, dirty_bytes=2)
        sim.run(5)
        red = sim.volume_reduction()
        # positions are half the traffic; halving them saves ~25% minus
        # line-padding; the paper reports 17% total reduction.
        assert 0.10 < red < 0.30

    def test_positions_are_low_byte_dominated(self):
        """The Section VII premise: per-step position deltas mostly touch
        low-order bytes, so DBA applies."""
        sim = MDOffloadSimulation(n_side=4, dba=False, dt=0.002)
        sim.run(10)
        means = sim.profiler.mean_fractions()
        assert means["last_byte"] + means["last_two_bytes"] > 0.5

    def test_dba_physics_stays_bounded(self):
        """DBA-truncated positions must not blow up the simulation."""
        base = MDOffloadSimulation(n_side=3, dba=False, seed=7)
        dba = MDOffloadSimulation(n_side=3, dba=True, seed=7)
        rb = base.run(20)
        rd = dba.run(20)
        assert np.isfinite(rd[-1].potential_energy)
        scale = abs(rb[-1].potential_energy) + 1.0
        assert abs(rd[-1].potential_energy - rb[-1].potential_energy) < 0.1 * scale

    def test_model_reproduces_section7_numbers(self):
        model = MDOffloadModel(HardwareParams.paper_default())
        out = model.improvement(dba_volume_reduction=0.17)
        assert out["improvement"] == pytest.approx(0.215, abs=0.02)
        assert out["cxl_share"] == pytest.approx(0.78, abs=0.03)
        assert out["dba_share"] == pytest.approx(0.22, abs=0.03)

    def test_model_validation(self):
        hw = HardwareParams.paper_default()
        with pytest.raises(ValueError):
            MDOffloadModel(hw, transfer_fraction=0.0)
        with pytest.raises(ValueError):
            MDOffloadModel(hw).improvement(2.0)
