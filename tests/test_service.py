"""The sweep service: HTTP job API, queue, backpressure, crash containment.

Covers the acceptance criteria of the simulation-as-a-service daemon:

* end-to-end submit -> poll -> results byte-identical to an inline
  :func:`~repro.experiments.executor.run_sweep` of the same cells;
* concurrent clients sharing one result cache (second client's
  identical sweep is served entirely from cache, same sweep hash);
* bounded-queue backpressure — 429 + ``Retry-After`` when full, held
  jobs still complete, 409 for results of an unfinished job;
* protocol errors: 400 on unknown experiments/params, 404 on unknown
  jobs and traces of unprofiled jobs;
* the merged Chrome trace at ``/jobs/<id>/trace`` (one ``process_name``
  per cell pid);
* a worker-killing cell contained to its own error outcome while the
  persistent pool restarts;
* the ``repro submit`` / ``repro poll`` CLI against a live daemon.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.experiments import registry
from repro.experiments.executor import SweepCell, run_sweep
from repro.experiments.registry import canonical_json
from repro.service import (
    ServiceBusy,
    ServiceClient,
    ServiceError,
    SweepService,
)
from tests._crashcell import ensure_crash_experiment

QUEUE_DEPTH = 2


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    # register before the service forks workers: pool processes inherit
    # the registry as of fork time
    registry.ensure_registered()
    ensure_crash_experiment()
    tmp = tmp_path_factory.mktemp("sweep-service")
    svc = SweepService(
        port=0,
        jobs=2,
        queue_depth=QUEUE_DEPTH,
        cache_dir=str(tmp / "cache"),
        work_dir=str(tmp / "work"),
    )
    svc.start()
    yield svc
    svc.close()


@pytest.fixture()
def client(service):
    return ServiceClient(service.url)


# ------------------------------------------------------------- end to end


def test_submit_poll_results_matches_inline(client):
    inline = run_sweep(
        [SweepCell.make("table6", {"batch": b}, seed=0) for b in (2, 4)],
        jobs=1,
    )
    assert inline.failed == 0
    job_id = client.submit(
        experiment="table6", sweep={"batch": [2, 4]}, seeds=[0]
    )
    status = client.wait(job_id, timeout=120.0)
    assert status["state"] == "done"
    assert status["cache"]["failures"] == 0
    assert status["sweep_hash"] == inline.sweep_hash
    # per-cell status entries line up with the submitted grid
    assert [o["cell"] for o in status["outcomes"]] == [
        "table6 batch=2 seed=0", "table6 batch=4 seed=0"
    ]
    assert all(o["error"] is None for o in status["outcomes"])
    # the results payload is byte-identical to the inline rows
    results = client.results(job_id)
    served = [o["result"]["rows"] for o in results["outcomes"]]
    assert [canonical_json(r) for r in served] == [
        canonical_json(o.result.rows) for o in inline.outcomes
    ]


def test_concurrent_clients_share_one_cache(service):
    # distinct param values so earlier tests' cache entries can't leak in
    spec = dict(experiment="table6", sweep={"batch": [3, 6]}, seeds=[0])
    first, second = ServiceClient(service.url), ServiceClient(service.url)
    cold = first.submit_and_wait(**spec)
    assert cold["state"] == "done"
    assert cold["cache"] == {"hits": 0, "misses": 2, "failures": 0}
    warm = second.submit_and_wait(**spec)
    assert warm["state"] == "done"
    assert warm["cache"] == {"hits": 2, "misses": 0, "failures": 0}
    assert warm["sweep_hash"] == cold["sweep_hash"]


# ----------------------------------------------------------- backpressure


def test_full_queue_answers_429_and_drains(service, client):
    service.pause()
    # the dispatcher may already be inside its (0.2s) dequeue wait when
    # pause lands; the queue is empty here, so outsleeping that wait
    # guarantees it is parked before the queue starts filling
    time.sleep(0.35)
    try:
        held = [
            client.submit(experiment="table6", sweep={"batch": [2]})
            for _ in range(QUEUE_DEPTH)
        ]
        with pytest.raises(ServiceBusy) as excinfo:
            client.submit(experiment="table6", sweep={"batch": [2]})
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after > 0
        # a queued job has no results yet: 409, not an empty payload
        with pytest.raises(ServiceError) as conflict:
            client.results(held[0])
        assert conflict.value.status == 409
    finally:
        service.resume()
    for job_id in held:  # every admitted job still completes
        assert client.wait(job_id, timeout=120.0)["state"] == "done"


# -------------------------------------------------------- protocol errors


def test_unknown_experiment_and_param_are_400(client):
    with pytest.raises(ServiceError) as excinfo:
        client.submit(experiment="not-an-experiment")
    assert excinfo.value.status == 400
    with pytest.raises(ServiceError) as excinfo:
        client.submit(experiment="table6", sweep={"nope": [1]})
    assert excinfo.value.status == 400


def test_unknown_job_and_unprofiled_trace_are_404(client):
    with pytest.raises(ServiceError) as excinfo:
        client.status("j99999-deadbeef")
    assert excinfo.value.status == 404
    status = client.submit_and_wait(experiment="table6", sweep={"batch": [2]})
    assert status["state"] == "done"
    with pytest.raises(ServiceError) as excinfo:
        client.trace(status["id"])  # submitted without profile=True
    assert excinfo.value.status == 404


# ------------------------------------------------------------ trace merge


@pytest.mark.slow
def test_trace_endpoint_merges_cell_traces(client):
    # fig10 is instrumented (table6 emits no profile events)
    status = client.submit_and_wait(
        experiment="fig10",
        sweep={"n_steps": [4, 6]},
        profile=True,
        timeout=240.0,
    )
    assert status["state"] == "done"
    trace = client.trace(status["id"])
    events = trace["traceEvents"]
    assert events, "profiled job produced an empty merged trace"
    names = [e for e in events if e.get("ph") == "M"
             and e["name"] == "process_name"]
    pids = {e["pid"] for e in events}
    # exactly one process_name per remapped pid, labelled "<stem>:<pid>"
    assert len(names) == len(pids)
    assert len({e["pid"] for e in names}) == len(names)
    assert all(":" in e["args"]["name"] for e in names)


# ------------------------------------------------------- crash containment


@pytest.mark.slow
def test_crash_cell_is_one_error_outcome(service, client):
    name = ensure_crash_experiment()
    status = client.wait(
        client.submit(cells=[
            {"experiment": name, "params": {"value": 1}},
            {"experiment": name, "params": {"crash": True}},
            {"experiment": name, "params": {"value": 3}},
        ]),
        timeout=240.0,
    )
    assert status["state"] == "done"
    errors = [o for o in status["outcomes"] if o["status"] == "error"]
    assert len(errors) == 1 and "crash" in errors[0]["error"]
    assert sum(1 for o in status["outcomes"] if o["error"] is None) == 2
    assert service.pool.restarts >= 1
    # the service (and its persistent pool) keeps serving afterwards
    follow_up = client.submit_and_wait(
        experiment="table6", sweep={"batch": [2]}
    )
    assert follow_up["state"] == "done"
    assert follow_up["cache"]["failures"] == 0


# ---------------------------------------------------------- health, stats


def test_healthz_and_stats_partition(client):
    health = client.healthz()
    assert health["ok"] is True
    assert health["workers"] == 2
    client.submit_and_wait(experiment="table6", sweep={"batch": [2]})
    stats = client.stats()
    assert stats["queue"]["capacity"] == QUEUE_DEPTH
    jobs = stats["jobs"]
    assert jobs["submitted"] >= jobs["done"] + jobs["failed"]
    cells = stats["cells"]
    assert all(k in cells for k in ("hits", "misses", "failures"))
    assert stats["cache"]["hits"] == cells["hits"]
    assert stats["cache"]["misses"] == cells["misses"]


# -------------------------------------------------------------------- CLI


def test_cli_submit_then_poll_roundtrip(service, client, capsys, tmp_path):
    from repro.cli import main

    url = ["--url", service.url]
    assert main(["submit", "table6", "--set", "batch=2,4", *url]) == 0
    out = capsys.readouterr().out
    assert out.startswith("submitted ")
    job_id = out.split()[1]
    results_path = tmp_path / "results.json"
    assert main(
        ["poll", job_id, "--wait", "--results", str(results_path), *url]
    ) == 0
    out = capsys.readouterr().out
    assert job_id in out and "done" in out
    written = json.loads(results_path.read_text())
    assert written["sweep_hash"] == client.status(job_id)["sweep_hash"]
    assert all(o["result"]["rows"] for o in written["outcomes"])


def test_cli_submit_wait_reports_outcomes(service, capsys):
    from repro.cli import main

    code = main([
        "submit", "table6", "--set", "batch=2", "--wait",
        "--url", service.url,
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "done" in out
