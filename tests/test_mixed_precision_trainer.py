"""Tests for the Section V mixed-precision training flow."""

import numpy as np
import pytest

from repro.offload import OffloadTrainer, TrainerMode
from repro.optim import LossScaler
from repro.dba import ActivationPolicy
from repro.tensor.transformer import TinyTransformerLM


def tiny_lm(seed=0):
    return TinyTransformerLM(
        vocab=16, dim=16, n_heads=2, n_layers=1, max_seq=12,
        rng=np.random.default_rng(seed),
    )


def batches(n, seed=1):
    rng = np.random.default_rng(seed)
    return [(rng.integers(0, 16, (4, 10)),) for _ in range(n)]


class TestMixedPrecision:
    def test_training_converges(self):
        tr = OffloadTrainer(tiny_lm(), lr=3e-3, mixed_precision=True)
        b = batches(1)[0]
        first = tr.step(*b).loss
        for _ in range(40):
            last = tr.step(*b).loss
        assert last < first

    def test_fp32_transfer_preserved(self):
        """Section V: the CPU->GPU transfer stays FP32, so DBA still
        applies — param payload halves under TECO-Reduction."""
        tr = OffloadTrainer(
            tiny_lm(),
            mode=TrainerMode.TECO_REDUCTION,
            mixed_precision=True,
            loss_scaler=LossScaler(init_scale=128),
            policy=ActivationPolicy(act_aft_steps=0, dirty_bytes=2),
        )
        r = tr.step(*batches(1)[0])
        assert r.dba_active
        assert r.param_payload_bytes <= tr.arena.params.nbytes / 2 + 64

    def test_overflow_skips_step(self):
        """An overflowing scale must skip the optimizer step and back off
        the scale, leaving master parameters untouched."""
        scaler = LossScaler(init_scale=2.0**20)
        tr = OffloadTrainer(
            tiny_lm(), lr=1e-3, mixed_precision=True, loss_scaler=scaler
        )
        # Blow up gradients artificially by scaling far past FP16 range:
        # max fp16 is 65504; a scale of 2^20 on O(1) grads overflows.
        before = tr.arena.snapshot()
        result = tr.step(*batches(1)[0])
        if result.skipped:
            np.testing.assert_array_equal(tr.arena.params, before)
            assert scaler.overflows >= 1
        else:
            # If grads were small enough not to overflow, force the check:
            assert scaler.scale >= 2.0**20

    def test_scaler_state_progresses(self):
        scaler = LossScaler(init_scale=2.0, growth_interval=2)
        tr = OffloadTrainer(
            tiny_lm(), lr=1e-3, mixed_precision=True, loss_scaler=scaler
        )
        tr.train(batches(4))
        assert scaler.scale >= 2.0  # grew or held, never stuck below init

    def test_fp16_rounding_changes_compute_copy(self):
        """The device compute copy is FP16-rounded: for values not
        representable in half precision the model sees rounded weights."""
        model = tiny_lm()
        tr = OffloadTrainer(model, mixed_precision=True)
        tr.gpu_params[:] = 1.0 + 2.0**-12  # not representable in fp16
        tr.step(*batches(1)[0])
        # After push, model weights reflect the rounded value 1.0 ... the
        # step then updates them; check the history recorded a real loss.
        assert np.isfinite(tr.history[-1].loss)

    def test_disabled_by_default(self):
        tr = OffloadTrainer(tiny_lm())
        assert tr.loss_scaler is None and not tr.mixed_precision
