"""Tests for the act_aft_steps Bayesian-style tuner."""

import numpy as np
import pytest

from repro.dba.tuning import ActivationTuner, TuningResult, tradeoff_objective


class TestObjective:
    def test_scalarization_direction(self):
        # better metric (lower) and better speedup (higher) => lower J
        good = tradeoff_objective(metric=1.0, speedup=1.8)
        bad = tradeoff_objective(metric=2.0, speedup=1.1)
        assert good < bad

    def test_weights(self):
        heavy_quality = tradeoff_objective(2.0, 1.5, quality_weight=10.0)
        light_quality = tradeoff_objective(2.0, 1.5, quality_weight=0.1)
        assert heavy_quality > light_quality


class TestActivationTuner:
    def test_finds_minimum_of_smooth_objective(self):
        """Quadratic bowl with the optimum inside the domain."""
        target = 700

        def objective(x: int) -> float:
            return (x - target) ** 2 / 1e4

        tuner = ActivationTuner(total_steps=1775, n_iterations=10)
        result = tuner.tune(objective)
        assert abs(result.best_act_aft_steps - target) < 250
        assert result.n_evaluations <= tuner.n_init + tuner.n_iterations + 2

    def test_memoizes_evaluations(self):
        calls = []

        def objective(x: int) -> float:
            calls.append(x)
            return float(x)

        ActivationTuner(total_steps=100, n_iterations=5).tune(objective)
        assert len(calls) == len(set(calls))  # never re-evaluated

    def test_handles_flat_objective(self):
        result = ActivationTuner(total_steps=50, n_iterations=3).tune(
            lambda x: 1.0
        )
        assert result.best_objective == 1.0

    def test_monotone_tradeoff_prefers_interior_or_edge(self):
        """A Figure-13-shaped objective: accuracy improves with later
        activation, speedup decays — the tuner must land near the knee."""

        def objective(x: int) -> float:
            metric = 22.5 - 1.3 * (1 - np.exp(-x / 400))  # ppl improving
            speedup = 1.15 + 0.48 * np.exp(-x / 600)  # speedup decaying
            return tradeoff_objective(metric, speedup, speed_weight=2.0)

        result = ActivationTuner(total_steps=1775, n_iterations=10).tune(
            objective
        )
        grid = np.arange(0, 1776)
        true_best = int(grid[np.argmin([objective(int(x)) for x in grid])])
        assert abs(result.best_act_aft_steps - true_best) <= 300

    def test_validation(self):
        with pytest.raises(ValueError):
            ActivationTuner(total_steps=0)
        with pytest.raises(ValueError):
            ActivationTuner(total_steps=10, n_init=1)
        with pytest.raises(ValueError):
            ActivationTuner(total_steps=10, length_scale=0)

    def test_result_fields(self):
        result = ActivationTuner(total_steps=20, n_iterations=2).tune(
            lambda x: abs(x - 10)
        )
        assert isinstance(result, TuningResult)
        assert result.best_act_aft_steps in result.evaluated
        assert result.evaluated[result.best_act_aft_steps] == result.best_objective
