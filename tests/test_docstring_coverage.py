"""Quality gate: every public module, class and function is documented.

Deliverable (e) requires doc comments on every public item; this test
enforces it mechanically so documentation cannot rot.
"""

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).parent.parent / "src" / "repro"
MODULES = sorted(SRC.rglob("*.py"))


def _public_defs(tree: ast.Module):
    """Top-level public classes/functions and public methods."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node.name.startswith("_"):
                continue
            yield node
            if isinstance(node, ast.ClassDef):
                for sub in node.body:
                    if isinstance(
                        sub, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ) and not sub.name.startswith("_"):
                        yield sub


@pytest.mark.parametrize(
    "path", MODULES, ids=lambda p: str(p.relative_to(SRC))
)
def test_module_has_docstring(path):
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), f"{path} lacks a module docstring"


@pytest.mark.parametrize(
    "path", MODULES, ids=lambda p: str(p.relative_to(SRC))
)
def test_public_items_documented(path):
    tree = ast.parse(path.read_text())
    missing = []
    for node in _public_defs(tree):
        doc = ast.get_docstring(node)
        # properties/dunder-free small accessors still need at least a line
        if not doc:
            missing.append(f"{node.name} (line {node.lineno})")
    assert not missing, f"{path}: undocumented public items: {missing}"


def test_module_count_sanity():
    """The package keeps its many-small-modules structure."""
    assert len(MODULES) > 45
