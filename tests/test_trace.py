"""Tests for trace generation and CXL replay."""

import numpy as np
import pytest

from repro.interconnect.cxl import CXLLinkModel
from repro.memsim import CacheHierarchy, SetAssociativeCache, WritebackTrace
from repro.trace import (
    adam_writeback_trace,
    replay_trace,
    simulate_sweep_writebacks,
)


class TestAnalyticGenerator:
    def test_one_event_per_line(self):
        tr = adam_writeback_trace(64 * 100, sweep_duration=1.0, llc_bytes=64 * 10)
        assert len(tr) == 100
        assert tr.unique_lines == 100

    def test_timestamps_monotone_and_bounded(self):
        tr = adam_writeback_trace(64 * 1000, 2.0, llc_bytes=64 * 100)
        assert np.all(np.diff(tr.times) >= 0)
        assert tr.times[-1] <= 2.0

    def test_llc_delay(self):
        """Line 0 is written back when the sweep front is LLC-capacity
        ahead, not immediately."""
        tr = adam_writeback_trace(64 * 1000, 1.0, llc_bytes=64 * 100)
        assert tr.times[0] == pytest.approx(0.1)

    def test_tail_flushed_at_end(self):
        tr = adam_writeback_trace(64 * 100, 1.0, llc_bytes=64 * 50)
        # last 50 lines all flush exactly at sweep end
        assert np.all(tr.times[-50:] == 1.0)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            adam_writeback_trace(0, 1.0)
        with pytest.raises(ValueError):
            adam_writeback_trace(64, 0.0)
        with pytest.raises(ValueError):
            adam_writeback_trace(64, 1.0, base_address=1)


class TestSimulatedGenerator:
    def test_matches_analytic_line_count(self):
        """Cache-accurate and analytic generators agree on which lines are
        written back (all of them, exactly once for a streaming sweep)."""
        param_bytes = 64 * 256
        hierarchy = CacheHierarchy(
            [SetAssociativeCache(64 * 16, 64, 4, name="LLC")]
        )
        sim_tr = simulate_sweep_writebacks(param_bytes, 1.0, hierarchy)
        ana_tr = adam_writeback_trace(param_bytes, 1.0, llc_bytes=64 * 16)
        assert len(sim_tr) == len(ana_tr) == 256
        assert set(sim_tr.addresses.tolist()) == set(
            ana_tr.addresses.tolist()
        )

    def test_analytic_delay_approximates_simulated(self):
        """First-writeback delay of the simulated hierarchy is within the
        analytic model's LLC window."""
        hierarchy = CacheHierarchy(
            [SetAssociativeCache(64 * 32, 64, 4, name="LLC")]
        )
        sim_tr = simulate_sweep_writebacks(64 * 512, 1.0, hierarchy)
        first_line0 = sim_tr.times[sim_tr.addresses == 0][0]
        ana = adam_writeback_trace(64 * 512, 1.0, llc_bytes=64 * 32)
        assert abs(first_line0 - ana.times[0]) < 0.05


class TestReplay:
    def test_empty_trace(self):
        r = replay_trace(WritebackTrace(np.empty(0), np.empty(0, dtype=np.uint64)))
        assert r.exposed_time == 0.0 and r.n_lines == 0

    def test_slow_producer_fully_overlapped(self):
        """If write-backs arrive slower than the link drains, only the last
        line's wire time is exposed."""
        link = CXLLinkModel.paper_default()
        t_line = link.line_transfer_time()
        n = 100
        times = np.arange(1, n + 1) * (t_line * 10)  # 10x slower than link
        tr = WritebackTrace(times, np.arange(n, dtype=np.uint64) * 64)
        r = replay_trace(tr, link)
        assert r.exposed_time == pytest.approx(t_line, rel=1e-6)
        assert r.overlap_fraction > 0.98

    def test_burst_producer_fully_exposed(self):
        """All lines arriving at once serialize after compute end."""
        link = CXLLinkModel.paper_default()
        n = 1000
        tr = WritebackTrace(
            np.zeros(n), np.arange(n, dtype=np.uint64) * 64
        )
        r = replay_trace(tr, link)
        assert r.exposed_time == pytest.approx(r.wire_time, rel=1e-9)
        assert r.overlap_fraction == pytest.approx(0.0)

    def test_matches_queueing_recursion(self):
        """Vectorized replay equals the scalar queueing recursion."""
        rng = np.random.default_rng(0)
        link = CXLLinkModel.paper_default()
        t_line = link.line_transfer_time()
        times = np.sort(rng.random(500)) * 200 * t_line
        tr = WritebackTrace(times, np.arange(500, dtype=np.uint64) * 64)
        r = replay_trace(tr, link)
        depart = 0.0
        for t in times:
            depart = max(t, depart) + t_line
        assert r.finish_time == pytest.approx(depart, rel=1e-9)

    def test_dba_halves_wire_time(self):
        n = 256
        tr = WritebackTrace(np.zeros(n), np.arange(n, dtype=np.uint64) * 64)
        full = replay_trace(tr, dirty_bytes=4)
        half = replay_trace(tr, dirty_bytes=2)
        assert half.wire_time < full.wire_time
        assert half.wire_bytes == n * 36  # 32B payload + 4B header

    def test_start_time_offsets(self):
        n = 10
        tr = WritebackTrace(np.zeros(n), np.arange(n, dtype=np.uint64) * 64)
        r0 = replay_trace(tr)
        r5 = replay_trace(tr, start_time=5.0)
        assert r5.finish_time == pytest.approx(5.0 + r0.finish_time)


class TestGradientTraceGenerator:
    def test_one_event_per_line(self):
        from repro.trace import gradient_writeback_trace

        tr = gradient_writeback_trace(64 * 240, 1.0, n_layers=24)
        assert len(tr) == 240
        assert tr.unique_lines == 240

    def test_layer_phasing(self):
        """The first layer's lines arrive early, the last layer's late."""
        from repro.trace import gradient_writeback_trace

        tr = gradient_writeback_trace(64 * 240, 2.4, n_layers=24)
        assert tr.times[0] < 0.2
        assert tr.times[-1] == pytest.approx(2.4, abs=0.15)
        assert np.all(np.diff(tr.times) >= -1e-12)

    def test_replay_matches_engine_shape(self):
        """Replaying the gradient trace over CXL shows the Figure-12
        behaviour: almost fully hidden when backward outlasts the wire."""
        from repro.interconnect.cxl import CXLLinkModel
        from repro.trace import gradient_writeback_trace, replay_trace

        link = CXLLinkModel.paper_default()
        n_lines = 50_000
        wire = link.line_transfer_time() * n_lines
        tr = gradient_writeback_trace(64 * n_lines, wire * 3, n_layers=24)
        result = replay_trace(tr, link)
        assert result.overlap_fraction > 0.9

    def test_validation(self):
        from repro.trace import gradient_writeback_trace

        with pytest.raises(ValueError):
            gradient_writeback_trace(0, 1.0, 2)
        with pytest.raises(ValueError):
            gradient_writeback_trace(64, 1.0, 0)
        with pytest.raises(ValueError):
            gradient_writeback_trace(64, 1.0, 2, base_address=3)
