"""Differential fuzz tests locking the batch fast paths to their scalar
references.

Every vectorized path added for throughput — ``access_block`` on the cache
and the hierarchy, the byte-gather DBA packer/merger, the block sweep
generator, chunked replay — must be *observationally identical* to the
scalar reference it replaces: same counters, same ordered write-back
streams, same payload bytes, same final cache state.  These tests drive
both implementations with random streams (aliasing sets, mixed
reads/writes, warm restarts, partial cache lines) and require exact
agreement, so a future "optimization" that drifts semantically fails
loudly instead of silently skewing every experiment downstream.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dba import Aggregator, DBARegister, Disaggregator
from repro.interconnect.cxl import CXLLinkModel
from repro.memsim import CacheHierarchy, SetAssociativeCache, WritebackTrace
from repro.trace import (
    replay_trace,
    replay_trace_chunked,
    replay_trace_scalar,
    simulate_sweep_writebacks,
)

#: (size_bytes, ways) cache shapes mixing tiny (heavy aliasing) and wide.
CACHE_SHAPES = [(64 * 8, 2), (64 * 16, 4), (64 * 64, 8), (64 * 32, 32)]


def run_scalar(cache, addrs, writes):
    """Drive ``cache.access`` one access at a time; mirror block outputs."""
    hits, wbs = [], []
    for a, w in zip(addrs, writes):
        r = cache.access(int(a), bool(w))
        hits.append(r.hit)
        if r.writeback_address is not None:
            wbs.append(r.writeback_address)
    return np.asarray(hits, dtype=bool), np.asarray(wbs, dtype=np.int64)


def assert_same_cache_state(a, b):
    """Full observable-state equality (valid planes, dirty, LRU order)."""
    assert a.stats == b.stats
    assert np.array_equal(a._valid, b._valid)
    assert np.array_equal(a._dirty, b._dirty)
    assert np.array_equal(a._tags[a._valid], b._tags[b._valid])
    assert np.array_equal(a._lru[a._valid], b._lru[b._valid])


@st.composite
def access_streams(draw):
    """Random mixed streams biased toward set aliasing."""
    n = draw(st.integers(1, 300))
    span_bits = draw(st.sampled_from([9, 12, 16, 40]))
    seed = draw(st.integers(0, 2**32 - 1))
    rng = np.random.default_rng(seed)
    addrs = rng.integers(0, 1 << span_bits, n)
    writes = rng.random(n) < draw(st.floats(0.0, 1.0))
    return addrs, writes


class TestCacheBlockDifferential:
    @given(st.sampled_from(CACHE_SHAPES), access_streams())
    @settings(max_examples=40, deadline=None)
    def test_block_equals_sequential(self, shape, stream):
        size, ways = shape
        addrs, writes = stream
        scalar = SetAssociativeCache(size, 64, ways)
        block = SetAssociativeCache(size, 64, ways)
        hits, wbs = run_scalar(scalar, addrs, writes)
        result = block.access_block(addrs, writes)
        assert np.array_equal(result.hits, hits)
        assert np.array_equal(result.writebacks, wbs)
        assert_same_cache_state(scalar, block)
        # The per-iteration flush must then also agree event-for-event.
        assert scalar.flush() == block.flush()

    @given(st.sampled_from(CACHE_SHAPES), access_streams(), access_streams())
    @settings(max_examples=25, deadline=None)
    def test_block_on_warm_cache(self, shape, first, second):
        """A block after a scalar prefix sees identical warm state."""
        size, ways = shape
        scalar = SetAssociativeCache(size, 64, ways)
        block = SetAssociativeCache(size, 64, ways)
        run_scalar(scalar, *first)
        run_scalar(block, *first)
        hits, wbs = run_scalar(scalar, *second)
        result = block.access_block(*second)
        assert np.array_equal(result.hits, hits)
        assert np.array_equal(result.writebacks, wbs)
        assert_same_cache_state(scalar, block)

    def test_uniform_write_flag_broadcast(self):
        a = SetAssociativeCache(1024, 64, 2)
        b = SetAssociativeCache(1024, 64, 2)
        addrs = np.arange(40) * 64
        hits, wbs = run_scalar(a, addrs, np.ones(40, dtype=bool))
        result = b.access_block(addrs, True)
        assert np.array_equal(result.writebacks, wbs)
        assert a.stats == b.stats

    def test_empty_stream(self):
        c = SetAssociativeCache(1024, 64, 2)
        result = c.access_block(np.empty(0, dtype=np.int64), True)
        assert result.hits.size == 0 and result.writebacks.size == 0
        assert c.stats.accesses == 0

    def test_negative_address_rejected(self):
        c = SetAssociativeCache(1024, 64, 2)
        with pytest.raises(ValueError):
            c.access_block(np.array([0, -64]), True)


class TestHierarchyBlockDifferential:
    @staticmethod
    def make():
        return CacheHierarchy(
            [
                SetAssociativeCache(64 * 8, 64, 2, name="L1"),
                SetAssociativeCache(64 * 32, 64, 4, name="L2"),
                SetAssociativeCache(64 * 128, 64, 8, name="L3"),
            ]
        )

    @given(access_streams())
    @settings(max_examples=30, deadline=None)
    def test_block_equals_sequential(self, stream):
        addrs, writes = stream
        scalar, block = self.make(), self.make()
        hit_levels, wbs, origins = [], [], []
        for j, (a, w) in enumerate(zip(addrs, writes)):
            r = scalar.access(int(a), bool(w))
            hit_levels.append(r.hit_level)
            for wb in r.memory_writebacks:
                wbs.append(wb)
                origins.append(j)
        result = block.access_block(addrs, writes)
        assert np.array_equal(result.hit_levels, np.asarray(hit_levels))
        assert np.array_equal(
            result.memory_writebacks, np.asarray(wbs, dtype=np.int64)
        )
        assert np.array_equal(
            result.writeback_origins, np.asarray(origins, dtype=np.int64)
        )
        assert scalar.memory_reads == block.memory_reads
        assert scalar.memory_writes == block.memory_writes
        for lv_s, lv_b in zip(scalar.levels, block.levels):
            assert_same_cache_state(lv_s, lv_b)
        assert scalar.flush() == block.flush()

    def test_single_level_hierarchy(self):
        a = CacheHierarchy([SetAssociativeCache(64 * 16, 64, 4)])
        b = CacheHierarchy([SetAssociativeCache(64 * 16, 64, 4)])
        addrs = np.arange(128) * 64
        wbs = []
        for x in addrs:
            wbs.extend(a.access(int(x), True).memory_writebacks)
        result = b.access_block(addrs, True)
        assert np.array_equal(
            result.memory_writebacks, np.asarray(wbs, dtype=np.int64)
        )
        assert a.memory_reads == b.memory_reads
        assert a.memory_writes == b.memory_writes


class TestSweepGeneratorDifferential:
    @staticmethod
    def make():
        return CacheHierarchy(
            [
                SetAssociativeCache(64 * 8, 64, 2, name="L1"),
                SetAssociativeCache(64 * 32, 64, 4, name="L2"),
            ]
        )

    @pytest.mark.parametrize(
        "param_bytes", [64 * 512, 64 * 513, 64 * 100 + 12, 4097]
    )
    def test_block_engine_byte_identical(self, param_bytes):
        """Both engines emit the very bytes the CXL emulator consumes."""
        scalar = simulate_sweep_writebacks(
            param_bytes, 0.125, self.make(), engine="scalar"
        )
        block = simulate_sweep_writebacks(
            param_bytes, 0.125, self.make(), engine="block"
        )
        assert scalar.times.tobytes() == block.times.tobytes()
        assert scalar.addresses.tobytes() == block.addresses.tobytes()

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            simulate_sweep_writebacks(4096, 1.0, self.make(), engine="numba")


class TestDBADifferential:
    @given(
        st.integers(1, 4),
        st.integers(1, 130),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_pack_unpack_roundtrip_matches_scalar(self, db, n_words, seed):
        """Vectorized pack/unpack ≡ per-word reference at every
        ``dirty_bytes``, including partial last cache lines."""
        rng = np.random.default_rng(seed)
        reg = DBARegister(enabled=True, dirty_bytes=db)
        tensor = rng.standard_normal(n_words).astype(np.float32)
        stale = rng.standard_normal(n_words).astype(np.float32)

        fast_agg, ref_agg = Aggregator(reg), Aggregator(reg)
        fast_payload = fast_agg.pack_tensor(tensor)
        ref_payload = ref_agg.pack_tensor_scalar(tensor)
        assert np.array_equal(fast_payload, ref_payload)
        assert fast_agg.payload_bytes_produced == ref_agg.payload_bytes_produced
        assert fast_agg.lines_processed == ref_agg.lines_processed

        fast_dis, ref_dis = Disaggregator(reg), Disaggregator(reg)
        fast_merged = fast_dis.unpack(stale, fast_payload)
        pad = (-n_words) % 16
        padded_stale = np.concatenate(
            [stale, np.zeros(pad, dtype=np.float32)]
        ).reshape(-1, 16)
        ref_merged = ref_dis.merge_lines_scalar(padded_stale, ref_payload)
        assert np.array_equal(
            fast_merged.view(np.uint32),
            ref_merged.reshape(-1)[:n_words].view(np.uint32),
        )
        assert fast_dis.lines_merged == ref_dis.lines_merged
        assert fast_dis.extra_reads == ref_dis.extra_reads
        if db == 4:  # full words on the wire -> lossless round trip
            assert np.array_equal(fast_merged, tensor)

    def test_bypass_register_identical(self):
        rng = np.random.default_rng(0)
        t = rng.standard_normal(35).astype(np.float32)
        fast = Aggregator(DBARegister()).pack_tensor(t)
        ref = Aggregator(DBARegister()).pack_tensor_scalar(t)
        assert np.array_equal(fast, ref)
        assert fast.shape[1] == 64  # full lines when DBA is off


class TestReplayDifferential:
    @given(
        st.integers(1, 2000),
        st.integers(0, 2**32 - 1),
        st.sampled_from([1, 7, 100, 1 << 18]),
        st.floats(0.0, 0.5),
    )
    @settings(max_examples=30, deadline=None)
    def test_chunked_is_bit_identical(self, n, seed, chunk, start):
        rng = np.random.default_rng(seed)
        trace = WritebackTrace(
            np.sort(rng.random(n)),
            rng.integers(0, 1 << 30, n).astype(np.uint64) * 64,
        )
        link = CXLLinkModel.paper_default()
        whole = replay_trace(trace, link, 2, start)
        chunked = replay_trace_chunked(trace, link, 2, start, chunk_events=chunk)
        assert whole == chunked  # dataclass equality: every field bit-equal

    @given(st.integers(1, 400), st.integers(0, 2**32 - 1))
    @settings(max_examples=20, deadline=None)
    def test_vectorized_matches_scalar_recursion(self, n, seed):
        rng = np.random.default_rng(seed)
        trace = WritebackTrace(
            np.sort(rng.random(n)),
            rng.integers(0, 1 << 20, n).astype(np.uint64) * 64,
        )
        link = CXLLinkModel.paper_default()
        vec = replay_trace(trace, link, 2)
        ref = replay_trace_scalar(trace, link, 2)
        assert vec.n_lines == ref.n_lines
        assert vec.wire_bytes == ref.wire_bytes
        assert vec.finish_time == pytest.approx(ref.finish_time, rel=1e-12)
        assert vec.exposed_time == pytest.approx(
            ref.exposed_time, rel=1e-9, abs=1e-15
        )

    def test_chunked_rejects_bad_chunk(self):
        trace = WritebackTrace(np.empty(0), np.empty(0, dtype=np.uint64))
        with pytest.raises(ValueError):
            replay_trace_chunked(trace, chunk_events=0)
