"""Tests for the flat arena and the functional offload trainer."""

import numpy as np
import pytest

from repro.dba import ActivationPolicy
from repro.models import get_model, make_tiny_proxy
from repro.offload import FlatArena, OffloadTrainer, TrainerMode
from repro.tensor import Linear, Sequential, Tensor
from repro.tensor.transformer import TinyTransformerLM

RNG = lambda s=0: np.random.default_rng(s)


def tiny_lm(seed=0):
    return TinyTransformerLM(
        vocab=16, dim=16, n_heads=2, n_layers=1, max_seq=12, rng=RNG(seed)
    )


def lm_batches(n, seed=1):
    rng = RNG(seed)
    pattern = np.tile(np.arange(16), 4)
    return [
        (np.stack([pattern[j : j + 10] for j in rng.integers(0, 50, 4)]),)
        for _ in range(n)
    ]


class TestFlatArena:
    def test_layout_deterministic(self):
        net = Sequential(Linear(3, 4, RNG()), Linear(4, 2, RNG(1)))
        arena = FlatArena(net)
        names = list(arena.slices)
        assert names == [
            "layers.0.weight",
            "layers.0.bias",
            "layers.1.weight",
            "layers.1.bias",
        ]
        assert arena.n_params == net.num_parameters()

    def test_pull_push_roundtrip(self):
        net = Linear(3, 4, RNG())
        arena = FlatArena(net)
        before = net.weight.data.copy()
        arena.params += 1.0
        arena.push_params()
        np.testing.assert_allclose(net.weight.data, before + 1.0)

    def test_push_external_source(self):
        net = Linear(2, 2, RNG())
        arena = FlatArena(net)
        other = np.zeros(arena.n_params, dtype=np.float32)
        arena.push_params(other)
        np.testing.assert_array_equal(net.weight.data, np.zeros((2, 2)))

    def test_collect_grads_zero_for_missing(self):
        net = Linear(2, 2, RNG())
        arena = FlatArena(net)
        net.weight.grad = np.ones((2, 2), dtype=np.float32)
        net.bias.grad = None
        arena.collect_grads()
        assert arena.grads[arena.slices["weight"]].sum() == 4.0
        assert arena.grads[arena.slices["bias"]].sum() == 0.0

    def test_view_aliases_params(self):
        net = Linear(2, 2, RNG())
        arena = FlatArena(net)
        arena.view("bias")[:] = 7.0
        assert np.all(arena.params[arena.slices["bias"]] == 7.0)

    def test_line_addressing(self):
        net = Linear(8, 8, RNG())  # 72 params -> 5 lines
        arena = FlatArena(net)
        assert arena.n_lines == -(-72 * 4 // 64)
        assert arena.line_index_of(0) == 0
        assert arena.line_index_of(16) == 1
        assert list(arena.lines_for_range(0, 17)) == [0, 1]
        assert list(arena.lines_for_range(5, 5)) == []

    def test_bad_indices(self):
        arena = FlatArena(Linear(2, 2, RNG()))
        with pytest.raises(IndexError):
            arena.line_index_of(10**9)
        with pytest.raises(IndexError):
            arena.lines_for_range(5, 2)

    def test_empty_module_rejected(self):
        from repro.tensor.nn import Module

        class Empty(Module):
            pass

        with pytest.raises(ValueError):
            FlatArena(Empty())


class TestOffloadTrainer:
    def test_baseline_loss_decreases(self):
        trainer = OffloadTrainer(tiny_lm(), lr=3e-3)
        results = trainer.train(lm_batches(40))
        assert results[-1].loss < results[0].loss

    def test_teco_cxl_bitwise_identical_to_baseline(self):
        """TECO-CXL changes transfer timing, not numerics: training must
        be bit-identical to ZeRO-Offload."""
        a = OffloadTrainer(tiny_lm(5), mode=TrainerMode.ZERO_OFFLOAD, lr=1e-3)
        b = OffloadTrainer(tiny_lm(5), mode=TrainerMode.TECO_CXL, lr=1e-3)
        batches = lm_batches(10)
        ra = a.train(batches)
        rb = b.train(batches)
        assert [r.loss for r in ra] == [r.loss for r in rb]
        np.testing.assert_array_equal(a.gpu_params, b.gpu_params)

    def test_dba_inactive_before_threshold(self):
        trainer = OffloadTrainer(
            tiny_lm(),
            mode=TrainerMode.TECO_REDUCTION,
            policy=ActivationPolicy(act_aft_steps=5),
        )
        results = trainer.train(lm_batches(8))
        assert [r.dba_active for r in results] == [False] * 5 + [True] * 3

    def test_dba_halves_param_payload(self):
        trainer = OffloadTrainer(
            tiny_lm(),
            mode=TrainerMode.TECO_REDUCTION,
            policy=ActivationPolicy(act_aft_steps=0, dirty_bytes=2),
        )
        r = trainer.step(*lm_batches(1)[0])
        assert r.dba_active
        # 2 of 4 bytes per param (line padding adds a little)
        full = trainer.arena.params.nbytes
        assert r.param_payload_bytes <= full / 2 + 64

    def test_dba_introduces_bounded_divergence(self):
        trainer = OffloadTrainer(
            tiny_lm(),
            mode=TrainerMode.TECO_REDUCTION,
            lr=1e-3,
            policy=ActivationPolicy(act_aft_steps=3, dirty_bytes=2),
        )
        trainer.train(lm_batches(3))
        assert trainer.divergence() == 0.0  # exact before activation
        trainer.train(lm_batches(10, seed=9))
        div = trainer.divergence()
        assert div > 0.0  # DBA is genuinely approximate after activation
        # dirty_bytes=2 keeps 16 mantissa bits: the stale high half-word
        # bounds the error to a small fraction of the value magnitude.
        assert div < np.max(np.abs(trainer.arena.params)) * 0.05 + 1e-3

    def test_dba_finetuning_follows_same_trend(self):
        """Figure 10's claim — in the paper's regime: DBA activates during
        *fine-tuning* of a pre-trained model, where per-step updates are
        small, so loss curves with and without DBA follow the same trend."""
        pre = OffloadTrainer(tiny_lm(11), lr=3e-3)
        pre.train(lm_batches(60, seed=3))
        state = pre.model.state_dict()

        finals = {}
        for mode in (TrainerMode.ZERO_OFFLOAD, TrainerMode.TECO_REDUCTION):
            model = tiny_lm(11)
            model.load_state_dict(state)
            tr = OffloadTrainer(
                model,
                mode=mode,
                lr=3e-4,
                policy=ActivationPolicy(act_aft_steps=5, dirty_bytes=2),
            )
            finals[mode] = tr.train(lm_batches(60, seed=4))[-1].loss
        base = finals[TrainerMode.ZERO_OFFLOAD]
        dba = finals[TrainerMode.TECO_REDUCTION]
        # small impact, no divergence
        assert dba < 4 * base
        assert abs(dba - base) < 0.5

    def test_volume_accounting(self):
        trainer = OffloadTrainer(
            tiny_lm(),
            mode=TrainerMode.TECO_REDUCTION,
            policy=ActivationPolicy(act_aft_steps=0),
        )
        trainer.train(lm_batches(4))
        assert trainer.volume.param_reduction == pytest.approx(0.5, abs=0.05)
        assert trainer.volume.grad_bytes == 4 * trainer.arena.grads.nbytes

    def test_grad_norm_reported(self):
        trainer = OffloadTrainer(tiny_lm(), max_grad_norm=0.1)
        r = trainer.step(*lm_batches(1)[0])
        assert r.grad_norm > 0

    def test_proxy_families_all_trainable(self):
        """Every Table III family proxy runs a step through the trainer."""
        rng = RNG(20)
        cases = {
            "gpt2": (rng.integers(0, 64, (2, 10)),),
            "bert-large-cased": (
                rng.integers(0, 64, (4, 8)),
                rng.integers(0, 2, 4),
            ),
            "t5-large": (
                rng.integers(0, 64, (2, 8)),
                rng.integers(0, 64, (2, 6)),
            ),
        }
        for name, batch in cases.items():
            model = make_tiny_proxy(get_model(name), RNG(21))
            trainer = OffloadTrainer(model)
            result = trainer.step(*batch)
            assert np.isfinite(result.loss), name

    def test_gcnii_proxy_through_trainer(self):
        from repro.tensor.gnn import normalized_adjacency

        rng = RNG(22)
        model = make_tiny_proxy(get_model("gcnii"), rng)
        n = 12
        adj = (rng.random((n, n)) < 0.3).astype(np.float32)
        adj = np.maximum(adj, adj.T)
        feats = rng.standard_normal((n, 16)).astype(np.float32)
        labels = rng.integers(0, 2, n)
        trainer = OffloadTrainer(model)
        r = trainer.step(feats, normalized_adjacency(adj), labels)
        assert np.isfinite(r.loss)
