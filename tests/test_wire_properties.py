"""Property tests for the aggregation wire formats (Hypothesis).

The PR 7 wire formats promise exact, mechanically-checkable contracts:

* **idempotence** — ``decode(encode(x))`` is a projection onto the
  format's representable set: round-tripping a round-tripped tensor is
  a bit-exact no-op for every format;
* **FP8-E4M3 saturation** — magnitudes beyond ±448 clamp to ±448 (the
  format's largest finite), never overflow to NaN;
* **INT8-DBA scale header** — the FP32 scale side channel survives the
  wire and re-encoding a decoded tensor reproduces it bit-exactly;
* **wire accounting** — :func:`wire_bytes_for` (the timing models' size
  estimator) agrees with the byte size of an actually-encoded tensor.

The suite is deterministic (``derandomize=True``): the same ~400 example
tensors are generated on every run, on every machine, under any
``PYTHONHASHSEED`` — no flake budget.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.interconnect.aggregation import (
    FP8_E4M3_MAX,
    WireFormat,
    decode_tensor,
    encode_tensor,
    wire_bytes_for,
    wire_roundtrip,
)

ALL_FORMATS = ("fp32", "fp16", "bf16", "fp8-e4m3", "int8-dba")

# Finite FP32 values beyond FP16's max legitimately overflow to inf in
# the fp16 cast — expected format semantics, not a numerical bug.
pytestmark = pytest.mark.filterwarnings(
    "ignore:overflow encountered in cast:RuntimeWarning"
)

#: Finite FP32 tensors spanning subnormal to near-max magnitudes.
finite_tensors = hnp.arrays(
    dtype=np.float32,
    shape=hnp.array_shapes(min_dims=1, max_dims=2, max_side=64),
    elements=st.floats(
        min_value=-(2.0**125),
        max_value=2.0**125,
        allow_nan=False,
        allow_infinity=False,
        width=32,
    ),
)

# database=None: derandomized runs never replay failures from a local
# example DB, so don't create a .hypothesis/ directory in the repo.
DETERMINISTIC = settings(
    max_examples=100, derandomize=True, deadline=None, database=None
)


class TestRoundtripIdempotence:
    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    @DETERMINISTIC
    @given(x=finite_tensors)
    def test_roundtrip_is_idempotent(self, fmt, x):
        once = wire_roundtrip(x, fmt)
        twice = wire_roundtrip(once, fmt)
        assert once.dtype == np.float32
        assert once.shape == x.shape
        np.testing.assert_array_equal(once, twice)

    @DETERMINISTIC
    @given(x=finite_tensors)
    def test_fp32_roundtrip_is_identity(self, x):
        np.testing.assert_array_equal(wire_roundtrip(x, "fp32"), x)

    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    @DETERMINISTIC
    @given(x=finite_tensors)
    def test_payload_decodes_to_shape_preserving_fp32(self, fmt, x):
        enc = encode_tensor(x, fmt)
        dec = decode_tensor(enc)
        assert enc.n_values == x.size
        assert enc.shape == x.shape
        assert dec.shape == x.shape
        assert dec.dtype == np.float32
        # No format invents NaNs from finite input (FP16 may overflow
        # finite values beyond its max to inf — that is the format).
        assert not np.isnan(dec).any()


class TestFP8Saturation:
    @DETERMINISTIC
    @given(
        x=hnp.arrays(
            dtype=np.float32,
            shape=st.integers(1, 64),
            elements=st.floats(
                min_value=FP8_E4M3_MAX,
                max_value=2.0**125,
                width=32,
            ),
        ),
        sign=st.sampled_from([1.0, -1.0]),
    )
    def test_overrange_magnitudes_saturate_at_448(self, x, sign):
        out = wire_roundtrip(sign * x, "fp8-e4m3")
        np.testing.assert_array_equal(
            out, np.full_like(out, sign * FP8_E4M3_MAX)
        )

    def test_infinities_saturate_not_nan(self):
        x = np.array([np.inf, -np.inf], dtype=np.float32)
        out = wire_roundtrip(x, "fp8-e4m3")
        np.testing.assert_array_equal(
            out, np.array([FP8_E4M3_MAX, -FP8_E4M3_MAX], dtype=np.float32)
        )

    @DETERMINISTIC
    @given(x=finite_tensors)
    def test_decoded_values_never_exceed_448(self, x):
        out = wire_roundtrip(x, "fp8-e4m3")
        assert np.abs(out).max(initial=0.0) <= FP8_E4M3_MAX


class TestInt8DbaScaleHeader:
    @DETERMINISTIC
    @given(x=finite_tensors)
    def test_scale_survives_the_wire(self, x):
        enc = encode_tensor(x, "int8-dba")
        assert enc.scale is not None and np.isfinite(enc.scale)
        dec = decode_tensor(enc)
        # Quantization error is bounded by half a step of the header
        # scale — the defining property of a faithful scale round-trip.
        tol = max(abs(enc.scale) / 2.0, 1e-30)
        assert float(np.abs(dec - x).max(initial=0.0)) <= tol * (1 + 1e-6)

    @DETERMINISTIC
    @given(x=finite_tensors)
    def test_reencoding_decoded_tensor_reproduces_scale(self, x):
        enc = encode_tensor(x, "int8-dba")
        enc2 = encode_tensor(decode_tensor(enc), "int8-dba")
        assert enc2.scale == enc.scale
        np.testing.assert_array_equal(
            enc2.payload.view(np.uint8), enc.payload.view(np.uint8)
        )

    def test_nonfinite_input_rejected(self):
        with pytest.raises(ValueError):
            encode_tensor(np.array([1.0, np.nan], np.float32), "int8-dba")


class TestWireByteAccounting:
    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    @DETERMINISTIC
    @given(x=finite_tensors)
    def test_wire_bytes_for_matches_encoded_size(self, fmt, x):
        enc = encode_tensor(x, fmt)
        # The timing estimator sizes from FP32 bytes; the encoder's own
        # wire_bytes is the ground truth (DBA line padding excluded).
        assert wire_bytes_for(x.size * 4.0, fmt) == enc.wire_bytes
        assert enc.wire_bytes == WireFormat.parse(fmt).wire_bytes(x.size)

    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    @DETERMINISTIC
    @given(n=st.integers(1, 10**6))
    def test_payload_never_beats_the_estimator(self, fmt, n):
        # Padding/overhead only ever add bytes: the estimator is a
        # floor on what any real payload of n values occupies.
        est = wire_bytes_for(n * 4.0, fmt)
        fmt_ = WireFormat.parse(fmt)
        assert est >= n * fmt_.bytes_per_value
        assert est == n * fmt_.bytes_per_value + fmt_.overhead_bytes
