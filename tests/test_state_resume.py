"""Bit-exact checkpoint/resume: container format, state dicts, harness.

Covers the ``repro.state`` subsystem end to end: the versioned CRC-checked
container, the ``state_dict()`` protocol of every resumable component,
resume equivalence across all trainer modes × mixed precision ×
accumulation (including a checkpoint mid-accumulation-window and one
straddling DBA activation), corruption handling, and the migration path
for seed-era ``np.savez`` checkpoints.
"""

import struct
import zlib

import numpy as np
import pytest

from repro.dba import ActivationPolicy
from repro.dba.activation import default_policy, fresh_policy
from repro.dba.aggregator import WORDS_PER_LINE, Aggregator
from repro.dba.registers import DBARegister
from repro.offload import CommVolume, OffloadTrainer, TrainerMode
from repro.optim import ConstantLR, FlatAdam, LossScaler, WarmupLinearDecay
from repro.state import (
    FORMAT_VERSION,
    MAGIC,
    CheckpointCorruptError,
    CheckpointError,
    CheckpointVersionError,
    StateMismatchError,
    is_legacy_checkpoint,
    load_state,
    save_state,
)
from repro.state.verify import (
    ResumeCase,
    build_demo_trainer,
    default_suite,
    demo_batches,
    render_verification,
    straddle_case_at,
    verify_resume,
)
from repro.tensor.transformer import TinyTransformerLM
from repro.utils.rng import load_rng_state, make_rng, rng_state_dict


class TestContainer:
    """The binary checkpoint container itself."""

    def test_round_trip_nested_state(self, tmp_path):
        state = {
            "arr": np.arange(7, dtype=np.float32),
            "nested": {"flag": True, "count": 3, "none": None, "s": "x"},
            "list": [1, 2.5, {"inner": np.ones((2, 3), dtype=np.float64)}],
        }
        path = tmp_path / "c.ckpt"
        save_state(path, state, meta={"k": "v"})
        loaded, meta = load_state(path)
        assert meta == {"k": "v"}
        np.testing.assert_array_equal(loaded["arr"], state["arr"])
        assert loaded["nested"] == state["nested"]
        assert loaded["list"][:2] == [1, 2.5]
        np.testing.assert_array_equal(
            loaded["list"][2]["inner"], state["list"][2]["inner"]
        )

    def test_no_tmp_file_left_behind(self, tmp_path):
        save_state(tmp_path / "c.ckpt", {"a": np.zeros(4)})
        assert [p.name for p in tmp_path.iterdir()] == ["c.ckpt"]

    def test_overwrite_is_atomic_replace(self, tmp_path):
        path = tmp_path / "c.ckpt"
        save_state(path, {"v": 1})
        save_state(path, {"v": 2})
        state, _ = load_state(path)
        assert state["v"] == 2

    def test_truncated_file_fails_loudly(self, tmp_path):
        path = tmp_path / "c.ckpt"
        save_state(path, {"arr": np.arange(100, dtype=np.float64)})
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(CheckpointCorruptError, match="CRC|truncated"):
            load_state(path)

    def test_bit_flip_fails_crc(self, tmp_path):
        path = tmp_path / "c.ckpt"
        save_state(path, {"arr": np.arange(100, dtype=np.float64)})
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0x01
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointCorruptError, match="CRC"):
            load_state(path)

    def test_future_version_rejected(self, tmp_path):
        path = tmp_path / "c.ckpt"
        save_state(path, {"v": 1})
        blob = bytearray(path.read_bytes())
        struct.pack_into("<I", blob, len(MAGIC), FORMAT_VERSION + 1)
        # Re-seal the CRC so only the version differs.
        crc = zlib.crc32(bytes(blob[:-4]))
        struct.pack_into("<I", blob, len(blob) - 4, crc)
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointVersionError, match="format version"):
            load_state(path)

    def test_wrong_magic_rejected(self, tmp_path):
        path = tmp_path / "c.ckpt"
        path.write_bytes(b"NOTACKPT" + b"\x00" * 64)
        with pytest.raises(CheckpointError, match="magic"):
            load_state(path)

    def test_legacy_npz_detected_and_refused_by_load_state(self, tmp_path):
        path = tmp_path / "legacy.npz"
        np.savez_compressed(path, params=np.zeros(4))
        assert is_legacy_checkpoint(path)
        with pytest.raises(CheckpointError, match="legacy"):
            load_state(path)

    def test_native_file_is_not_legacy(self, tmp_path):
        path = tmp_path / "c.ckpt"
        save_state(path, {"v": 1})
        assert not is_legacy_checkpoint(path)


class TestComponentStateDicts:
    """state_dict()/load_state_dict() of the individual components."""

    def test_flat_adam_round_trip(self):
        a = FlatAdam(8, lr=1e-3)
        a.step(np.ones(8, np.float32), np.ones(8, np.float32))
        a.lr = 5e-4  # as a schedule would
        b = FlatAdam(8, lr=1e-3)
        b.load_state_dict(a.state_dict())
        assert b.step_count == 1 and b.lr == 5e-4
        np.testing.assert_array_equal(a.m, b.m)
        np.testing.assert_array_equal(a.v, b.v)

    def test_flat_adam_wrong_size_rejected(self):
        with pytest.raises(ValueError, match="parameters"):
            FlatAdam(4).load_state_dict(FlatAdam(8).state_dict())

    def test_loss_scaler_round_trip(self):
        s = LossScaler(init_scale=2.0**8, growth_interval=3)
        s.update(False)
        s.update(True)  # overflow: halves the scale
        t = LossScaler()
        t.load_state_dict(s.state_dict())
        assert t.scale == s.scale == 2.0**7
        assert t._good_steps == 0 and t.overflows == 1
        assert t.growth_interval == 3

    def test_activation_policy_round_trip(self):
        p = ActivationPolicy(act_aft_steps=2, dirty_bytes=3)
        p.check_activation(5)
        q = ActivationPolicy()
        q.load_state_dict(p.state_dict())
        assert q.active and q.activated_at == 5
        assert q.act_aft_steps == 2 and q.dirty_bytes == 3

    def test_comm_volume_round_trip(self):
        v = CommVolume(param_bytes=10, grad_bytes=20, param_bytes_full_equivalent=40)
        w = CommVolume()
        w.load_state_dict(v.state_dict())
        assert (w.param_bytes, w.grad_bytes, w.param_bytes_full_equivalent) == (
            10,
            20,
            40,
        )

    def test_lr_schedule_mismatch_rejected(self):
        good = WarmupLinearDecay(base_lr=1e-3, warmup_steps=2, total_steps=10)
        good.load_state_dict(good.state_dict())  # same schedule: fine
        with pytest.raises(ValueError, match="schedule"):
            ConstantLR(1e-3).load_state_dict(good.state_dict())

    def test_rng_state_round_trip_resumes_stream(self):
        rng = make_rng(5)
        rng.random(10)
        snap = rng_state_dict(rng)
        expected = rng.random(4)
        other = make_rng(5)
        load_rng_state(other, snap)
        np.testing.assert_array_equal(other.random(4), expected)


SMALL_CASES = [
    ResumeCase(mode=mode, mixed_precision=mixed, accumulation_steps=accum)
    for mode in TrainerMode
    for mixed in (False, True)
    for accum in (1, 4)
]


class TestResumeEquivalence:
    """resume == never stopped, bit-exactly."""

    @pytest.mark.parametrize("case", SMALL_CASES, ids=lambda c: c.name)
    def test_all_modes_precisions_accumulation(self, case, tmp_path):
        report = verify_resume(
            case, checkpoint_path=tmp_path / "resume.ckpt"
        )
        assert report.ok, report
        assert report.max_param_delta == 0.0
        assert report.max_device_delta == 0.0
        assert report.max_moment_delta == 0.0

    def test_checkpoint_mid_accumulation_window(self, tmp_path):
        """checkpoint_step=5 with accumulation_steps=4 stops at micro-step
        1 of the second window; the banked gradient must survive."""
        case = ResumeCase(
            mode=TrainerMode.TECO_CXL, accumulation_steps=4, checkpoint_step=5
        )
        trainer = build_demo_trainer(
            mode=case.mode, accumulation_steps=4, act_aft_steps=8
        )
        trainer.train(demo_batches(5, seed=1))
        assert trainer._micro_step == 1  # genuinely mid-window
        assert report_ok(case, tmp_path)

    def test_checkpoint_straddles_dba_activation(self, tmp_path):
        """Checkpoint before the activation threshold, resume across it:
        the resumed run must activate at the same step as the
        reference, with identical device-copy divergence."""
        case = straddle_case_at(8)
        assert case.checkpoint_step < case.act_aft_steps < case.n_steps
        report = verify_resume(case, checkpoint_path=tmp_path / "s.ckpt")
        assert report.ok, report

    @pytest.mark.slow
    def test_checkpoint_straddles_paper_step_500(self, tmp_path):
        """The acceptance-criterion case: DBA activates at the paper's
        step 500, the checkpoint lands before it (and mid-accumulation),
        and resume is still bit-exact."""
        case = ResumeCase(
            mode=TrainerMode.TECO_REDUCTION,
            mixed_precision=True,
            accumulation_steps=4,
            checkpoint_step=497,
            act_aft_steps=500,
            n_steps=506,
        )
        report = verify_resume(case, checkpoint_path=tmp_path / "p.ckpt")
        assert report.ok, report

    def test_render_verification_reports_pass(self):
        reports = [verify_resume(ResumeCase())]
        text = render_verification(reports)
        assert "PASS" in text and "bit-exact" in text

    def test_default_suite_covers_required_grid(self):
        cases = default_suite(include_paper_activation=True)
        grid = {
            (c.mode, c.mixed_precision, c.accumulation_steps) for c in cases
        }
        for mode in TrainerMode:
            for mixed in (False, True):
                assert (mode, mixed, 1) in grid
                assert (mode, mixed, 4) in grid
        assert any(c.act_aft_steps == 500 for c in cases)


def report_ok(case, tmp_path) -> bool:
    """Run one case and return its bit-exactness verdict."""
    return verify_resume(case, checkpoint_path=tmp_path / "c.ckpt").ok


class TestTrainerCheckpointValidation:
    """Descriptive errors instead of silent wrong resumes."""

    def _ckpt(self, tmp_path, **kwargs):
        trainer = build_demo_trainer(**kwargs)
        trainer.train(demo_batches(3))
        path = tmp_path / "t.ckpt"
        trainer.save_checkpoint(path)
        return path

    def test_mixed_checkpoint_into_plain_trainer_rejected(self, tmp_path):
        path = self._ckpt(tmp_path, mixed_precision=True)
        plain = build_demo_trainer(mixed_precision=False)
        with pytest.raises(StateMismatchError, match="mixed-precision"):
            plain.load_checkpoint(path)

    def test_plain_checkpoint_into_mixed_trainer_rejected(self, tmp_path):
        path = self._ckpt(tmp_path, mixed_precision=False)
        mixed = build_demo_trainer(mixed_precision=True)
        with pytest.raises(StateMismatchError, match="loss-scaler"):
            mixed.load_checkpoint(path)

    def test_mode_mismatch_rejected(self, tmp_path):
        path = self._ckpt(tmp_path, mode=TrainerMode.TECO_REDUCTION)
        other = build_demo_trainer(mode=TrainerMode.ZERO_OFFLOAD)
        with pytest.raises(StateMismatchError, match="mode|trainer runs"):
            other.load_checkpoint(path)

    def test_accumulation_mismatch_rejected(self, tmp_path):
        path = self._ckpt(tmp_path, accumulation_steps=4)
        other = build_demo_trainer(accumulation_steps=1)
        with pytest.raises(StateMismatchError, match="accumulation"):
            other.load_checkpoint(path)

    def test_wrong_param_count_rejected(self, tmp_path):
        path = self._ckpt(tmp_path)
        other = OffloadTrainer(
            TinyTransformerLM(
                vocab=16,
                dim=32,
                n_heads=2,
                n_layers=1,
                max_seq=12,
                rng=np.random.default_rng(9),
            )
        )
        with pytest.raises(ValueError, match="parameter count"):
            other.load_checkpoint(path)

    def test_corrupted_trainer_checkpoint_fails_loudly(self, tmp_path):
        path = self._ckpt(tmp_path)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointCorruptError):
            build_demo_trainer().load_checkpoint(path)


class TestLegacyMigration:
    """Seed-era np.savez checkpoints still load."""

    def _legacy_ckpt(self, tmp_path, trainer):
        path = tmp_path / "legacy.npz"
        np.savez_compressed(
            path,
            params=trainer.arena.params,
            gpu_params=trainer.gpu_params,
            adam_m=trainer.optimizer.m,
            adam_v=trainer.optimizer.v,
            adam_steps=np.int64(trainer.optimizer.step_count),
            step_count=np.int64(trainer.step_count),
            dba_active=np.bool_(trainer.policy.active),
            dba_activated_at=np.int64(
                -1
                if trainer.policy.activated_at is None
                else trainer.policy.activated_at
            ),
        )
        return path

    def test_legacy_fields_restore(self, tmp_path):
        trainer = build_demo_trainer(mode=TrainerMode.TECO_REDUCTION)
        trainer.train(demo_batches(10))
        assert trainer.policy.active
        path = self._legacy_ckpt(tmp_path, trainer)

        fresh = build_demo_trainer(mode=TrainerMode.TECO_REDUCTION)
        fresh.load_checkpoint(path)
        np.testing.assert_array_equal(fresh.arena.params, trainer.arena.params)
        np.testing.assert_array_equal(fresh.gpu_params, trainer.gpu_params)
        np.testing.assert_array_equal(fresh.optimizer.m, trainer.optimizer.m)
        assert fresh.step_count == trainer.step_count
        assert fresh.policy.active
        assert fresh.policy.activated_at == trainer.policy.activated_at

    def test_legacy_continues_training(self, tmp_path):
        trainer = build_demo_trainer()
        trainer.train(demo_batches(4))
        path = self._legacy_ckpt(tmp_path, trainer)
        fresh = build_demo_trainer()
        fresh.load_checkpoint(path)
        fresh.train(demo_batches(2, seed=3))
        assert fresh.step_count == 6

    def test_legacy_wrong_param_count_rejected(self, tmp_path):
        trainer = build_demo_trainer()
        path = self._legacy_ckpt(tmp_path, trainer)
        other = OffloadTrainer(
            TinyTransformerLM(
                vocab=16,
                dim=32,
                n_heads=2,
                n_layers=1,
                max_seq=12,
                rng=np.random.default_rng(9),
            )
        )
        with pytest.raises(ValueError, match="parameter count"):
            other.load_checkpoint(path)


class TestSatelliteFixes:
    """Regression tests for the state-loss and accounting bugs."""

    def test_early_returns_gate_dba_by_mode(self):
        """A pre-activated policy must not mark ZeRO-Offload accumulation
        micro-steps as dba_active (the main path already gated this)."""
        policy = ActivationPolicy(act_aft_steps=0, dirty_bytes=2)
        policy.check_activation(0)  # latch it on, as a shared policy might
        trainer = build_demo_trainer(
            mode=TrainerMode.ZERO_OFFLOAD, accumulation_steps=2
        )
        trainer.policy = policy
        r_micro = trainer.step(*demo_batches(1)[0])
        r_full = trainer.step(*demo_batches(1)[0])
        assert not r_micro.dba_active
        assert not r_full.dba_active

    def test_overflow_skip_gates_dba_by_mode(self):
        policy = ActivationPolicy(act_aft_steps=0, dirty_bytes=2)
        policy.check_activation(0)
        trainer = build_demo_trainer(
            mode=TrainerMode.TECO_CXL, mixed_precision=True
        )
        trainer.policy = policy
        # Huge but finite in FP32; the FP16 gradient cast overflows to inf.
        trainer.loss_scaler.scale = 2.0**30
        result = trainer.step(*demo_batches(1)[0])
        assert result.skipped
        assert not result.dba_active

    def test_pack_tensor_excludes_padding_from_byte_count(self):
        agg = Aggregator(DBARegister.paper_default())
        agg.pack_tensor(np.zeros(20, dtype=np.float32))  # 20 words, 2 lines
        assert agg.payload_bytes_produced == 20 * 2  # not 32 * 2

    def test_pack_lines_whole_lines_unchanged(self):
        agg = Aggregator(DBARegister.paper_default())
        agg.pack_lines(np.zeros((5, WORDS_PER_LINE), dtype=np.float32))
        assert agg.payload_bytes_produced == 5 * 32

    def test_pack_tensor_bypass_excludes_padding_too(self):
        agg = Aggregator(DBARegister(enabled=False))
        agg.pack_tensor(np.zeros(20, dtype=np.float32))
        assert agg.payload_bytes_produced == 20 * 4

    def test_trainer_param_bytes_are_true_wire_bytes(self):
        """The demo model's arena is not a multiple of 16 words, so the
        padded-payload bug inflated param_bytes; now it must be exactly
        n_params * dirty_bytes under DBA."""
        trainer = build_demo_trainer(
            mode=TrainerMode.TECO_REDUCTION, act_aft_steps=0
        )
        result = trainer.step(*demo_batches(1)[0])
        assert result.dba_active
        assert result.param_payload_bytes == trainer.arena.n_params * 2
        assert trainer.volume.param_bytes == trainer.arena.n_params * 2

    def test_default_policy_reset_between_tests_a(self):
        """With the autouse fixture, latching the global policy here..."""
        default_policy.check_activation(default_policy.act_aft_steps)
        assert default_policy.active

    def test_default_policy_reset_between_tests_b(self):
        """...must not leak into this (alphabetically later) test."""
        assert not default_policy.active

    def test_fresh_policy_is_isolated(self):
        p = fresh_policy(act_aft_steps=0)
        p.check_activation(0)
        assert p.active
        assert not default_policy.active
        assert p is not fresh_policy(act_aft_steps=0)


class TestVolumeAndScalerSurviveResume:
    """The exact state the old format dropped, asserted directly."""

    def test_comm_volume_counters_survive(self, tmp_path):
        trainer = build_demo_trainer(mode=TrainerMode.TECO_REDUCTION)
        trainer.train(demo_batches(6))
        path = tmp_path / "v.ckpt"
        trainer.save_checkpoint(path)
        fresh = build_demo_trainer(mode=TrainerMode.TECO_REDUCTION)
        assert fresh.volume.total == 0
        fresh.load_checkpoint(path)
        assert fresh.volume.state_dict() == trainer.volume.state_dict()
        assert fresh.volume.param_reduction == trainer.volume.param_reduction

    def test_scaler_state_survives(self, tmp_path):
        trainer = build_demo_trainer(mixed_precision=True)
        trainer.train(demo_batches(5))
        trainer.loss_scaler.update(True)  # an overflow before checkpointing
        path = tmp_path / "s.ckpt"
        trainer.save_checkpoint(path)
        fresh = build_demo_trainer(mixed_precision=True)
        fresh.load_checkpoint(path)
        assert fresh.loss_scaler.state_dict() == trainer.loss_scaler.state_dict()

    def test_accum_buffer_survives(self, tmp_path):
        trainer = build_demo_trainer(accumulation_steps=4)
        trainer.train(demo_batches(2))  # mid-window: 2 banked micro-steps
        assert trainer._micro_step == 2
        path = tmp_path / "a.ckpt"
        trainer.save_checkpoint(path)
        fresh = build_demo_trainer(accumulation_steps=4)
        fresh.load_checkpoint(path)
        assert fresh._micro_step == 2
        np.testing.assert_array_equal(fresh._accum, trainer._accum)

    def test_history_survives(self, tmp_path):
        trainer = build_demo_trainer()
        trainer.train(demo_batches(4))
        path = tmp_path / "h.ckpt"
        trainer.save_checkpoint(path)
        fresh = build_demo_trainer()
        fresh.load_checkpoint(path)
        assert fresh.history == trainer.history
        assert fresh.loss_curve == trainer.loss_curve
