"""Tests for span extraction (QA proxy) and greedy generation."""

import numpy as np
import pytest

from repro.data import qa_span_set
from repro.optim import Adam
from repro.tensor.span import (
    TinySpanExtractor,
    span_exact_match,
    span_f1,
)
from repro.tensor.transformer import TinySeq2Seq

RNG = lambda s=0: np.random.default_rng(s)


class TestSpanMetrics:
    def test_exact_match(self):
        assert span_exact_match((2, 5), (2, 5)) == 1.0
        assert span_exact_match((2, 5), (2, 4)) == 0.0

    def test_f1_identical(self):
        assert span_f1((3, 6), (3, 6)) == 1.0

    def test_f1_disjoint(self):
        assert span_f1((0, 1), (5, 6)) == 0.0

    def test_f1_partial_overlap(self):
        # pred {2,3,4}, gold {3,4,5}: overlap 2, p=r=2/3 -> f1=2/3
        assert span_f1((2, 4), (3, 5)) == pytest.approx(2 / 3)

    def test_f1_symmetry(self):
        assert span_f1((1, 4), (2, 6)) == span_f1((2, 6), (1, 4))


class TestQASpanData:
    def test_markers_delimit_gold_span(self):
        ids, starts, ends = qa_span_set(30, 32, 16, RNG(1))
        for row, s, e in zip(ids, starts, ends):
            assert row[s - 1] == 1  # marker before
            assert row[e + 1] == 1  # marker after
            assert 1 not in row[s : e + 1]  # span body is content

    def test_shapes_and_bounds(self):
        ids, starts, ends = qa_span_set(10, 32, 12, RNG(2))
        assert ids.shape == (10, 12)
        assert np.all(starts <= ends)
        assert np.all(ends < 12)

    def test_validation(self):
        with pytest.raises(ValueError):
            qa_span_set(10, 32, 4, RNG(0))
        with pytest.raises(ValueError):
            qa_span_set(0, 32, 12, RNG(0))
        with pytest.raises(ValueError):
            qa_span_set(10, 32, 12, RNG(0), marker=99)


class TestTinySpanExtractor:
    def test_forward_shapes(self):
        model = TinySpanExtractor(32, 16, 2, 1, 12, RNG(3))
        start, end = model(RNG(4).integers(0, 32, (3, 12)))
        assert start.shape == (3, 12) and end.shape == (3, 12)

    def test_predict_spans_valid(self):
        model = TinySpanExtractor(32, 16, 2, 1, 12, RNG(5))
        spans = model.predict_spans(RNG(6).integers(0, 32, (4, 12)))
        for s, e in spans:
            assert 0 <= s <= e < 12

    @pytest.mark.slow
    def test_learns_marked_spans(self):
        """The marker pattern is learnable: F1 rises well above chance."""
        rng = RNG(7)
        ids, starts, ends = qa_span_set(64, 32, 12, rng)
        model = TinySpanExtractor(32, 32, 2, 2, 12, rng)
        opt = Adam(model.parameter_list(), lr=3e-3)
        for _ in range(120):
            opt.zero_grad()
            model.loss(ids, starts, ends).backward()
            opt.step()
        metrics = model.evaluate(ids, starts, ends)
        assert metrics["f1"] > 60.0
        assert metrics["em"] <= metrics["f1"] + 1e-9

    def test_shared_layers_shrink_params(self):
        shared = TinySpanExtractor(32, 16, 2, 4, 12, RNG(8), share_layers=True)
        full = TinySpanExtractor(32, 16, 2, 4, 12, RNG(9), share_layers=False)
        assert shared.num_parameters() < full.num_parameters()


class TestGreedyGeneration:
    def _model(self, seed=10):
        return TinySeq2Seq(vocab=16, dim=16, n_heads=2, n_layers=1,
                           max_seq=12, rng=RNG(seed))

    def test_generation_stops_at_eos_or_max(self):
        model = self._model()
        src = RNG(11).integers(2, 16, (3, 6))
        seqs = model.generate(src, bos=0, eos=1, max_len=5)
        assert len(seqs) == 3
        for s in seqs:
            assert len(s) <= 5
            assert 1 not in s  # eos stripped

    def test_mean_generation_length(self):
        model = self._model()
        src = RNG(12).integers(2, 16, (4, 6))
        mean = model.mean_generation_length(src, bos=0, eos=1, max_len=6)
        assert 0.0 <= mean <= 6.0

    @pytest.mark.slow
    def test_trained_model_generates_target_length(self):
        """After training on EOS-terminated 4-token targets, greedy
        generation converges to length ~4 — the gen-length metric."""
        rng = RNG(13)
        model = self._model(13)
        src = rng.integers(2, 16, (32, 8))
        core = src[:, ::2][:, :4]
        bos = np.zeros((32, 1), dtype=core.dtype)
        eos = np.ones((32, 1), dtype=core.dtype)
        tgt = np.concatenate([bos, core, eos], axis=1)
        opt = Adam(model.parameter_list(), lr=3e-3)
        for _ in range(150):
            opt.zero_grad()
            model.loss(src, tgt).backward()
            opt.step()
        mean = model.mean_generation_length(src, bos=0, eos=1, max_len=8)
        assert 3.0 <= mean <= 5.0

    def test_invalid_max_len(self):
        model = self._model()
        with pytest.raises(ValueError):
            model.generate(np.zeros((1, 4), dtype=int), 0, 1, max_len=0)
