"""Tests for dirty-byte aggregation: registers, packing, merging, policy."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.dba import (
    ActivationPolicy,
    Aggregator,
    DBARegister,
    Disaggregator,
)
from repro.dba.aggregator import AGGREGATOR_LATENCY, WORDS_PER_LINE
from repro.dba.disaggregator import DISAGGREGATOR_LATENCY
from repro.dba.hw import (
    ASIC_RATIOS,
    amortized_line_overhead,
    paper_aggregator,
    paper_disaggregator,
)
from repro.utils.bits import low_byte_mask

lines_arrays = hnp.arrays(
    dtype=np.float32,
    shape=st.integers(1, 32).map(lambda n: (n, WORDS_PER_LINE)),
    elements=st.floats(width=32, allow_nan=False),
)


class TestDBARegister:
    def test_paper_default_encoding(self):
        reg = DBARegister.paper_default()
        assert reg.encode() == 0b1010
        assert reg.enabled and reg.dirty_bytes == 2

    def test_decode_roundtrip(self):
        for enabled in (False, True):
            for db in range(1, 5):
                reg = DBARegister(enabled=enabled, dirty_bytes=db)
                assert DBARegister.decode(reg.encode()) == reg

    def test_disabled_effective_bytes(self):
        reg = DBARegister(enabled=False, dirty_bytes=2)
        assert reg.effective_dirty_bytes == 4
        assert reg.payload_fraction == 1.0

    def test_enabled_payload_fraction(self):
        assert DBARegister.paper_default().payload_fraction == 0.5

    def test_invalid_values(self):
        with pytest.raises(ValueError):
            DBARegister(dirty_bytes=5)
        with pytest.raises(ValueError):
            DBARegister(enabled=True, dirty_bytes=0)
        with pytest.raises(ValueError):
            DBARegister.decode(16)
        with pytest.raises(ValueError):
            DBARegister.decode(0b0111)  # dirty field 7 > 4


class TestAggregator:
    def test_payload_size_default(self):
        agg = Aggregator(DBARegister.paper_default())
        lines = np.zeros((3, WORDS_PER_LINE), dtype=np.float32)
        payload = agg.pack_lines(lines)
        assert payload.shape == (3, 32)
        assert agg.payload_bytes_per_line() == 32

    def test_bypass_sends_full_lines(self):
        agg = Aggregator(DBARegister(enabled=False))
        lines = np.ones((2, WORDS_PER_LINE), dtype=np.float32)
        payload = agg.pack_lines(lines)
        assert payload.shape == (2, 64)
        assert agg.latency == 0.0

    def test_known_bytes(self):
        """Word 0x11223344 with dirty_bytes=2 -> payload bytes 0x44, 0x33."""
        agg = Aggregator(DBARegister.paper_default())
        lines = np.full(
            (1, WORDS_PER_LINE), 0x11223344, dtype=np.uint32
        ).view(np.float32)
        payload = agg.pack_lines(lines)
        assert payload[0, 0] == 0x44 and payload[0, 1] == 0x33

    def test_bad_shape(self):
        agg = Aggregator()
        with pytest.raises(ValueError):
            agg.pack_lines(np.zeros((2, 8), dtype=np.float32))

    def test_counters(self):
        agg = Aggregator(DBARegister.paper_default())
        agg.pack_lines(np.zeros((5, WORDS_PER_LINE), dtype=np.float32))
        assert agg.lines_processed == 5
        assert agg.payload_bytes_produced == 5 * 32

    def test_pack_tensor_pads(self):
        agg = Aggregator(DBARegister.paper_default())
        payload = agg.pack_tensor(np.zeros(20, dtype=np.float32))
        assert payload.shape == (2, 32)  # 20 words -> 2 lines

    @pytest.mark.parametrize("db", [1, 2, 3, 4])
    @pytest.mark.parametrize(
        "n_words",
        # Straddle line boundaries in every way: exact multiples, one
        # short, one over, mid-line, and a single word.
        [1, 15, 16, 17, 31, 32, 33, 63, 64, 65, 100],
    )
    def test_pack_tensor_payload_accounting(self, db, n_words):
        """``payload_bytes_produced`` counts only *tensor* bytes.

        ``pack_tensor`` pads the last partial line with zero words to make
        whole cache lines, but zero-padding never crosses the wire, so the
        counter must equal ``tensor_payload_bytes(n_words)`` — i.e.
        ``n_words * effective_dirty_bytes`` exactly — for the vectorized
        and scalar packers alike (they share the accounting path).
        """
        reg = DBARegister(enabled=True, dirty_bytes=db)
        tensor = np.arange(1, n_words + 1, dtype=np.float32)
        for pack in ("pack_tensor", "pack_tensor_scalar"):
            agg = Aggregator(reg)
            payload = getattr(agg, pack)(tensor)
            n_lines = -(-n_words // WORDS_PER_LINE)
            assert payload.shape == (n_lines, WORDS_PER_LINE * db)
            assert agg.lines_processed == n_lines
            assert agg.payload_bytes_produced == agg.tensor_payload_bytes(
                n_words
            )
            assert agg.payload_bytes_produced == n_words * db

    def test_pack_tensor_accounting_accumulates(self):
        """Sequential packs keep the padding-free sum, mixed shapes."""
        agg = Aggregator(DBARegister(enabled=True, dirty_bytes=2))
        agg.pack_tensor(np.zeros(17, dtype=np.float32))
        agg.pack_tensor(np.zeros(32, dtype=np.float32))
        agg.pack_tensor(np.zeros(3, dtype=np.float32))
        assert agg.payload_bytes_produced == (17 + 32 + 3) * 2
        assert agg.lines_processed == 2 + 2 + 1


class TestDisaggregatorRoundTrip:
    @given(lines_arrays, st.integers(1, 4))
    @settings(max_examples=40)
    def test_low_bytes_travel_high_bytes_stay(self, fresh, db):
        """Core DBA invariant: after aggregate+merge, every word equals
        (stale high bytes | fresh low bytes)."""
        reg = DBARegister(enabled=True, dirty_bytes=db)
        rng = np.random.default_rng(0)
        stale = rng.standard_normal(fresh.shape).astype(np.float32)
        payload = Aggregator(reg).pack_lines(fresh)
        merged = Disaggregator(reg).merge_lines(stale, payload)
        mask = low_byte_mask(db)
        mw = merged.view(np.uint32)
        fw = fresh.view(np.uint32)
        sw = stale.view(np.uint32)
        np.testing.assert_array_equal(mw & mask, fw & mask)
        np.testing.assert_array_equal(mw & ~mask, sw & ~mask)

    @given(lines_arrays)
    @settings(max_examples=30)
    def test_four_bytes_is_lossless(self, fresh):
        reg = DBARegister(enabled=True, dirty_bytes=4)
        stale = np.zeros_like(fresh)
        payload = Aggregator(reg).pack_lines(fresh)
        merged = Disaggregator(reg).merge_lines(stale, payload)
        np.testing.assert_array_equal(
            merged.view(np.uint32), fresh.view(np.uint32)
        )

    def test_small_update_reconstructed_exactly(self):
        """If the true update only touches low bytes, DBA is lossless —
        the empirical common case of Observation 2."""
        reg = DBARegister.paper_default()
        stale = np.ones((4, WORDS_PER_LINE), dtype=np.float32)
        fresh_words = stale.view(np.uint32).copy()
        fresh_words += 37  # perturb low mantissa bytes only
        fresh = fresh_words.view(np.float32)
        payload = Aggregator(reg).pack_lines(fresh)
        merged = Disaggregator(reg).merge_lines(stale, payload)
        np.testing.assert_array_equal(merged, fresh)

    def test_exponent_change_is_approximated(self):
        """When the exponent byte changes, DBA keeps the stale exponent:
        the approximation the paper's accuracy study quantifies."""
        reg = DBARegister.paper_default()
        stale = np.full((1, WORDS_PER_LINE), 1.0, dtype=np.float32)
        fresh = np.full((1, WORDS_PER_LINE), 2.0, dtype=np.float32)
        payload = Aggregator(reg).pack_lines(fresh)
        merged = Disaggregator(reg).merge_lines(stale, payload)
        assert not np.array_equal(merged, fresh)  # lossy here
        # exponent (high bytes) from stale:
        mask = low_byte_mask(2)
        np.testing.assert_array_equal(
            merged.view(np.uint32) & ~mask, stale.view(np.uint32) & ~mask
        )

    def test_payload_shape_checked(self):
        reg = DBARegister.paper_default()
        dis = Disaggregator(reg)
        with pytest.raises(ValueError):
            dis.merge_lines(
                np.zeros((2, WORDS_PER_LINE), dtype=np.float32),
                np.zeros((2, 64), dtype=np.uint8),
            )

    def test_merge_tensor_roundtrip_nonmultiple(self):
        reg = DBARegister(enabled=True, dirty_bytes=4)
        fresh = np.arange(21, dtype=np.float32)
        stale = np.zeros(21, dtype=np.float32)
        payload = Aggregator(reg).pack_tensor(fresh)
        merged = Disaggregator(reg).merge_tensor(stale, payload)
        np.testing.assert_array_equal(merged, fresh)

    def test_extra_read_accounting(self):
        reg = DBARegister.paper_default()
        dis = Disaggregator(reg)
        stale = np.zeros((7, WORDS_PER_LINE), dtype=np.float32)
        payload = Aggregator(reg).pack_lines(stale)
        dis.merge_lines(stale, payload)
        assert dis.extra_reads == 7


class TestActivationPolicy:
    def test_inactive_before_threshold(self):
        p = ActivationPolicy(act_aft_steps=500)
        assert not p.check_activation(0)
        assert not p.check_activation(499)
        assert p.check_activation(500)
        assert p.activated_at == 500

    def test_sticky(self):
        p = ActivationPolicy(act_aft_steps=10)
        p.check_activation(10)
        assert p.check_activation(5)  # stays on even for odd call order

    def test_zero_threshold_immediate(self):
        p = ActivationPolicy(act_aft_steps=0)
        assert p.check_activation(0)

    def test_register_reflects_state(self):
        p = ActivationPolicy(act_aft_steps=1, dirty_bytes=3)
        assert not p.register().enabled
        p.check_activation(1)
        reg = p.register()
        assert reg.enabled and reg.dirty_bytes == 3

    def test_reset(self):
        p = ActivationPolicy(act_aft_steps=0)
        p.check_activation(0)
        p.reset()
        assert not p.active and p.activated_at is None

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ActivationPolicy(act_aft_steps=-1)
        with pytest.raises(ValueError):
            ActivationPolicy(dirty_bytes=0)
        with pytest.raises(ValueError):
            ActivationPolicy().check_activation(-1)


class TestHardwareModel:
    def test_paper_scaled_power(self):
        agg = paper_aggregator().to_asic()
        dis = paper_disaggregator().to_asic()
        assert agg.power_w == pytest.approx(0.0127, rel=1e-6)
        assert dis.power_w == pytest.approx(0.017, rel=1e-6)

    def test_paper_scaled_latency(self):
        agg = paper_aggregator().to_asic()
        dis = paper_disaggregator().to_asic()
        assert agg.latency_s == pytest.approx(1.28e-9, rel=1e-6)
        assert dis.latency_s == pytest.approx(1.126e-9, rel=1e-6)
        assert agg.latency_s == pytest.approx(AGGREGATOR_LATENCY, rel=1e-6)
        assert dis.latency_s == pytest.approx(DISAGGREGATOR_LATENCY, rel=1e-6)

    def test_ratios(self):
        assert (ASIC_RATIOS.area, ASIC_RATIOS.power, ASIC_RATIOS.delay) == (
            33.0,
            14.0,
            3.5,
        )

    def test_pipelined_overhead_is_zero(self):
        """1.28 ns unit latency hides behind ~4 ns wire time."""
        assert amortized_line_overhead(1.28e-9, 4e-9) == 0.0
        assert amortized_line_overhead(5e-9, 4e-9) == pytest.approx(1e-9)


class TestMergeDesignJustification:
    """Negative control: why the Disaggregator must merge with the stale
    *resident copy* (Section V-C's requirement that 'there is an old copy
    of the parameters in the accelerator memory')."""

    def test_merging_with_zeros_destroys_values(self):
        """If the high bytes came from zeros instead of the stale copy,
        every reconstructed value would collapse to a denormal-scale
        garbage number — DBA is only sound because the receiver holds
        last step's data."""
        import numpy as np

        from repro.utils.bits import merge_low_bytes

        rng = np.random.default_rng(0)
        fresh = rng.standard_normal(1024).astype(np.float32)
        stale_good = (fresh.astype(np.float64) * (1 + 1e-5)).astype(
            np.float32
        )
        with_stale = merge_low_bytes(stale_good, fresh, 2)
        with_zeros = merge_low_bytes(np.zeros_like(fresh), fresh, 2)

        err_stale = np.max(np.abs(with_stale - fresh))
        err_zeros = np.max(np.abs(with_zeros - fresh))
        assert err_stale < 0.05 * np.max(np.abs(fresh))
        assert err_zeros > 0.9 * np.max(np.abs(fresh))  # catastrophic

    def test_dba_unsound_without_prior_sync(self):
        """A device copy that never received the pre-activation full
        transfers diverges wildly: activation after warm-up is essential
        (the act_aft_steps > 0 design)."""
        import numpy as np

        from repro.dba import Aggregator, DBARegister, Disaggregator

        rng = np.random.default_rng(1)
        reg = DBARegister.paper_default()
        cpu_master = rng.standard_normal(256).astype(np.float32)
        synced_device = cpu_master.copy()
        unsynced_device = rng.standard_normal(256).astype(np.float32)

        payload = Aggregator(reg).pack_tensor(cpu_master)
        good = Disaggregator(reg).merge_tensor(synced_device, payload)
        bad = Disaggregator(reg).merge_tensor(unsynced_device, payload)
        assert np.max(np.abs(good - cpu_master)) < 1e-6
        assert np.max(np.abs(bad - cpu_master)) > 0.1
