"""Autograd correctness: analytic gradients vs central finite differences."""

import numpy as np
import pytest

from repro.tensor import Tensor, functional as F, no_grad
from repro.tensor.tensor import concat


def numerical_grad(fn, x: np.ndarray, eps: float = 1e-3) -> np.ndarray:
    """Central-difference gradient of scalar fn wrt x (float64 interior)."""
    g = np.zeros_like(x, dtype=np.float64)
    flat = x.reshape(-1)
    gf = g.reshape(-1)
    for i in range(flat.size):
        old = flat[i]
        flat[i] = old + eps
        hi = fn(x)
        flat[i] = old - eps
        lo = fn(x)
        flat[i] = old
        gf[i] = (hi - lo) / (2 * eps)
    return g


def check_gradient(build_loss, shape, seed=0, rtol=2e-2, atol=2e-3):
    rng = np.random.default_rng(seed)
    x0 = rng.standard_normal(shape).astype(np.float32)

    t = Tensor(x0.copy(), requires_grad=True)
    loss = build_loss(t)
    loss.backward()
    analytic = t.grad

    def f(arr):
        with no_grad():
            return build_loss(Tensor(arr.astype(np.float32))).item()

    numeric = numerical_grad(f, x0.copy().astype(np.float64))
    np.testing.assert_allclose(analytic, numeric, rtol=rtol, atol=atol)


class TestBasicOps:
    def test_add_mul_chain(self):
        check_gradient(lambda t: ((t * 3.0 + 1.0) * t).sum(), (4, 3))

    def test_sub_div(self):
        check_gradient(lambda t: ((t - 0.5) / (t * t + 2.0)).sum(), (5,))

    def test_pow(self):
        check_gradient(lambda t: (t**3).sum(), (6,))

    def test_matmul(self):
        rng = np.random.default_rng(1)
        w = Tensor(rng.standard_normal((3, 2)).astype(np.float32))
        check_gradient(lambda t: (t @ w).sum(), (4, 3))

    def test_matmul_both_sides(self):
        rng = np.random.default_rng(2)
        a0 = rng.standard_normal((2, 3)).astype(np.float32)
        b0 = rng.standard_normal((3, 2)).astype(np.float32)
        a = Tensor(a0.copy(), requires_grad=True)
        b = Tensor(b0.copy(), requires_grad=True)
        (a @ b).sum().backward()
        np.testing.assert_allclose(a.grad, np.ones((2, 2)) @ b0.T, rtol=1e-5)
        np.testing.assert_allclose(b.grad, a0.T @ np.ones((2, 2)), rtol=1e-5)

    def test_batched_matmul(self):
        rng = np.random.default_rng(3)
        w = Tensor(rng.standard_normal((2, 4, 3)).astype(np.float32))
        check_gradient(lambda t: (t @ w).sum(), (2, 3, 4))

    def test_broadcast_add(self):
        b = Tensor(np.zeros(3, dtype=np.float32), requires_grad=True)
        x = Tensor(np.ones((4, 3), dtype=np.float32))
        (x + b).sum().backward()
        np.testing.assert_allclose(b.grad, np.full(3, 4.0))

    def test_broadcast_mul_gradient(self):
        check_gradient(
            lambda t: (t * Tensor(np.arange(3, dtype=np.float32))).sum(),
            (2, 3),
        )

    def test_reuse_accumulates(self):
        t = Tensor(np.array([2.0], dtype=np.float32), requires_grad=True)
        (t * t + t).sum().backward()  # d/dt (t^2 + t) = 2t + 1 = 5
        np.testing.assert_allclose(t.grad, [5.0])

    def test_mean_and_sum_axis(self):
        check_gradient(lambda t: t.mean(axis=0).sum(), (3, 4))
        check_gradient(lambda t: t.sum(axis=1, keepdims=True).sum(), (3, 4))

    def test_max_gradient_routes_to_argmax(self):
        t = Tensor(np.array([[1.0, 5.0, 2.0]], dtype=np.float32), requires_grad=True)
        t.max(axis=1).sum().backward()
        np.testing.assert_allclose(t.grad, [[0.0, 1.0, 0.0]])

    def test_reshape_transpose(self):
        check_gradient(lambda t: (t.reshape(6) * 2.0).sum(), (2, 3))
        check_gradient(lambda t: t.transpose(1, 0).sum(), (2, 3))
        check_gradient(lambda t: t.swapaxes(0, 1).sum(), (2, 3))

    def test_getitem_scatter(self):
        t = Tensor(np.arange(5, dtype=np.float32), requires_grad=True)
        idx = np.array([0, 0, 3])
        t[idx].sum().backward()
        np.testing.assert_allclose(t.grad, [2.0, 0, 0, 1.0, 0])

    def test_concat(self):
        a = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        b = Tensor(np.ones((3, 2), dtype=np.float32), requires_grad=True)
        c = concat([a, b], axis=0)
        (c * 2.0).sum().backward()
        np.testing.assert_allclose(a.grad, np.full((2, 2), 2.0))
        np.testing.assert_allclose(b.grad, np.full((3, 2), 2.0))

    def test_no_grad_builds_no_graph(self):
        t = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        with no_grad():
            out = t * 2.0
        assert not out.requires_grad

    def test_backward_requires_scalar_or_grad(self):
        t = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2.0).backward()

    def test_backward_on_nongrad_rejected(self):
        t = Tensor(np.ones(1, dtype=np.float32))
        with pytest.raises(RuntimeError):
            t.backward()


class TestActivations:
    def test_relu(self):
        check_gradient(lambda t: F.relu(t).sum(), (10,), seed=4)

    def test_gelu(self):
        check_gradient(lambda t: F.gelu(t).sum(), (10,), seed=5)

    def test_tanh_sigmoid(self):
        check_gradient(lambda t: F.tanh(t).sum(), (8,), seed=6)
        check_gradient(lambda t: F.sigmoid(t).sum(), (8,), seed=7)

    def test_softmax_rows_sum_to_one(self):
        rng = np.random.default_rng(8)
        x = Tensor(rng.standard_normal((4, 7)).astype(np.float32))
        s = F.softmax(x)
        np.testing.assert_allclose(s.data.sum(axis=-1), np.ones(4), rtol=1e-5)

    def test_softmax_gradient(self):
        w = np.arange(5, dtype=np.float32)
        check_gradient(
            lambda t: (F.softmax(t) * Tensor(w)).sum(), (3, 5), seed=9
        )

    def test_log_softmax_stable_for_large_inputs(self):
        x = Tensor(np.array([[1000.0, 0.0]], dtype=np.float32))
        out = F.log_softmax(x)
        assert np.all(np.isfinite(out.data))


class TestLosses:
    def test_cross_entropy_matches_manual(self):
        logits = Tensor(
            np.array([[2.0, 1.0, 0.0], [0.0, 0.0, 0.0]], dtype=np.float32),
            requires_grad=True,
        )
        targets = np.array([0, 2])
        loss = F.cross_entropy(logits, targets)
        probs = np.exp(logits.data) / np.exp(logits.data).sum(-1, keepdims=True)
        expected = -np.log(probs[[0, 1], targets]).mean()
        assert loss.item() == pytest.approx(expected, rel=1e-5)

    def test_cross_entropy_gradient(self):
        targets = np.array([1, 0, 2])
        check_gradient(
            lambda t: F.cross_entropy(t, targets), (3, 4), seed=10
        )

    def test_cross_entropy_ignore_index(self):
        logits = Tensor(
            np.zeros((2, 3), dtype=np.float32), requires_grad=True
        )
        loss = F.cross_entropy(logits, np.array([1, -1]), ignore_index=-1)
        # only first row counts; uniform logits -> loss = log(3)
        assert loss.item() == pytest.approx(np.log(3.0), rel=1e-5)

    def test_cross_entropy_shape_mismatch(self):
        with pytest.raises(ValueError):
            F.cross_entropy(
                Tensor(np.zeros((2, 3), dtype=np.float32)), np.zeros((3,), int)
            )

    def test_mse(self):
        target = np.zeros((4,), dtype=np.float32)
        check_gradient(lambda t: F.mse_loss(t, target), (4,), seed=11)


class TestDropoutAndMask:
    def test_dropout_eval_identity(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((10, 10), dtype=np.float32))
        out = F.dropout(x, 0.5, rng, training=False)
        np.testing.assert_array_equal(out.data, x.data)

    def test_dropout_preserves_expectation(self):
        rng = np.random.default_rng(0)
        x = Tensor(np.ones((200, 200), dtype=np.float32))
        out = F.dropout(x, 0.3, rng, training=True)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_dropout_invalid_p(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            F.dropout(Tensor(np.ones(2)), 1.0, rng, True)

    def test_where_mask(self):
        x = Tensor(np.ones((2, 2), dtype=np.float32), requires_grad=True)
        mask = np.array([[True, False], [True, True]])
        out = F.where_mask(x, mask, -1e9)
        assert out.data[0, 1] == -1e9
        out.sum().backward()
        np.testing.assert_allclose(x.grad, mask.astype(np.float32))

    def test_embedding_bounds(self):
        table = Tensor(np.zeros((4, 2), dtype=np.float32), requires_grad=True)
        with pytest.raises(IndexError):
            F.embedding(table, np.array([4]))
