"""Tests for the model zoo and spec arithmetic."""

import numpy as np
import pytest

from repro.models import (
    MODEL_REGISTRY,
    ModelFamily,
    TinyProxyConfig,
    evaluation_models,
    get_model,
    gpt2_scaling_series,
    make_tiny_proxy,
)
from repro.models.specs import ModelSpec
from repro.utils.units import MB


class TestRegistry:
    def test_table3_param_counts(self):
        expected = {
            "gpt2": 122_000_000,
            "albert-xxlarge-v1": 223_000_000,
            "bert-large-cased": 334_000_000,
            "t5-large": 737_000_000,
            "gcnii": 156_000_000,
        }
        for name, count in expected.items():
            assert get_model(name).stored_params == count

    def test_table3_giant_cache_sizes(self):
        expected = {
            "gpt2": 324,
            "albert-xxlarge-v1": 547,
            "bert-large-cased": 817,
            "t5-large": 2069,
            "gcnii": 400,
        }
        for name, mb in expected.items():
            assert get_model(name).giant_cache_bytes == mb * MB

    def test_table3_architecture(self):
        bert = get_model("bert-large-cased")
        assert (bert.n_layers, bert.hidden, bert.n_heads) == (24, 1024, 12)
        t5 = get_model("t5-large")
        assert (t5.n_layers, t5.hidden) == (48, 1024)
        gcnii = get_model("gcnii")
        assert (gcnii.n_layers, gcnii.hidden) == (64, 1560)

    def test_evaluation_order(self):
        names = [m.name for m in evaluation_models()]
        assert names == [
            "gpt2",
            "albert-xxlarge-v1",
            "bert-large-cased",
            "t5-large",
            "gcnii",
        ]

    def test_scaling_series(self):
        series = gpt2_scaling_series()
        counts = [m.stored_params for m in series]
        assert counts == sorted(counts)
        assert series[-1].stored_params == 11_000_000_000

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            get_model("gpt5")

    def test_gcnii_param_count_matches_architecture(self):
        g = get_model("gcnii")
        assert g.compute_params == pytest.approx(g.stored_params, rel=0.01)


class TestSpecArithmetic:
    def test_albert_compute_intensity_dominates(self):
        """The structural Albert anomaly: highest FLOPs per transferred
        byte among the transformer workloads."""
        intensities = {
            m.name: m.compute_intensity
            for m in evaluation_models()
            if m.family is not ModelFamily.GNN
        }
        assert max(intensities, key=intensities.get) == "albert-xxlarge-v1"

    def test_flops_scale_with_batch(self):
        bert = get_model("bert-large-cased")
        assert bert.forward_flops(8) == pytest.approx(
            2 * bert.forward_flops(4)
        )
        assert bert.backward_flops(4) == pytest.approx(
            2 * bert.forward_flops(4)
        )

    def test_gnn_batch_independent(self):
        g = get_model("gcnii")
        assert g.tokens_per_step(1) == g.tokens_per_step(16) == 251

    def test_byte_volumes(self):
        bert = get_model("bert-large-cased")
        assert bert.param_bytes == bert.stored_params * 4
        assert bert.optimizer_state_bytes == bert.stored_params * 8

    def test_summary_row(self):
        row = get_model("gpt2").summary_row()
        assert row[0] == "gpt2" and "122M" in row

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            ModelSpec(
                name="x",
                family=ModelFamily.DECODER,
                stored_params=0,
                n_layers=1,
                hidden=8,
                n_heads=1,
                seq_len=8,
                dataset="d",
                task="t",
                metric="m",
                giant_cache_bytes=1,
                compute_params=1,
            )
        with pytest.raises(ValueError):
            ModelSpec(
                name="g",
                family=ModelFamily.GNN,
                stored_params=10,
                n_layers=1,
                hidden=8,
                n_heads=0,
                seq_len=0,
                dataset="d",
                task="t",
                metric="m",
                giant_cache_bytes=1,
                compute_params=1,
                graph_nodes=0,
            )

    def test_batch_validation(self):
        with pytest.raises(ValueError):
            get_model("gpt2").tokens_per_step(0)


class TestTinyProxies:
    def test_every_family_builds(self):
        rng = np.random.default_rng(0)
        for spec in evaluation_models():
            model = make_tiny_proxy(spec, rng)
            assert model.num_parameters() > 0

    def test_albert_proxy_shares_layers(self):
        rng = np.random.default_rng(1)
        albert = make_tiny_proxy(get_model("albert-xxlarge-v1"), rng)
        gpt2ish = make_tiny_proxy(get_model("bert-large-cased"), rng)
        assert albert.num_parameters() < gpt2ish.num_parameters()

    def test_custom_config(self):
        cfg = TinyProxyConfig(dim=16, n_heads=4)
        model = make_tiny_proxy(
            get_model("gpt2"), np.random.default_rng(2), cfg
        )
        out = model(np.zeros((1, 4), dtype=int))
        assert out.shape == (1, 4, cfg.vocab)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            TinyProxyConfig(dim=10, n_heads=3)
