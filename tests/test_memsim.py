"""Tests for the memory-system simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim import (
    CacheHierarchy,
    DRAMModel,
    DRAMTimings,
    SetAssociativeCache,
    WritebackTrace,
    gem5_avx_hierarchy,
)
from repro.memsim.trace import WritebackEvent


class TestCacheBasics:
    def test_geometry(self):
        c = SetAssociativeCache(8 * 1024, line_bytes=64, ways=8)
        assert c.n_sets == 16

    def test_bad_geometry(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(100, line_bytes=64, ways=8)
        with pytest.raises(ValueError):
            SetAssociativeCache(8 * 1024, line_bytes=60, ways=8)

    def test_miss_then_hit(self):
        c = SetAssociativeCache(1024, 64, 2)
        r1 = c.access(0, is_write=False)
        r2 = c.access(32, is_write=False)  # same line
        assert not r1.hit and r2.hit
        assert c.stats.hits == 1 and c.stats.misses == 1

    def test_write_marks_dirty(self):
        c = SetAssociativeCache(1024, 64, 2)
        c.access(0, is_write=True)
        assert c.is_dirty(0)
        c.access(64, is_write=False)
        assert not c.is_dirty(64)

    def test_lru_eviction_order(self):
        # 2-way, target one set: set count = 1024/64/2 = 8 sets
        c = SetAssociativeCache(1024, 64, 2)
        stride = c.n_sets * 64  # same-set addresses
        c.access(0 * stride, True)
        c.access(1 * stride, True)
        c.access(0 * stride, False)  # touch 0 -> 1 becomes LRU
        r = c.access(2 * stride, True)  # evicts line 1
        assert r.writeback_address == 1 * stride
        assert c.contains(0) and not c.contains(stride)

    def test_clean_eviction_no_writeback(self):
        c = SetAssociativeCache(1024, 64, 2)
        stride = c.n_sets * 64
        c.access(0, False)
        c.access(stride, False)
        r = c.access(2 * stride, False)
        assert not r.hit and r.writeback_address is None

    def test_flush_returns_dirty_lines(self):
        c = SetAssociativeCache(1024, 64, 2)
        c.access(0, True)
        c.access(64, False)
        c.access(128, True)
        flushed = sorted(c.flush())
        assert flushed == [0, 128]
        assert c.resident_lines == 0

    def test_invalidate(self):
        c = SetAssociativeCache(1024, 64, 2)
        c.access(0, True)
        assert c.invalidate(0) == 0  # dirty -> returns address
        assert not c.contains(0)
        c.access(64, False)
        assert c.invalidate(64) is None  # clean

    def test_streaming_writes_writeback_once_per_line(self):
        """A streaming write sweep larger than the cache writes each line
        back exactly once — the access pattern of the vectorized ADAM
        update over the parameter array."""
        c = SetAssociativeCache(1024, 64, 2)
        n_lines = 64  # 4 KiB sweep over a 1 KiB cache
        wbs = []
        for i in range(n_lines):
            r = c.access(i * 64, is_write=True)
            if r.writeback_address is not None:
                wbs.append(r.writeback_address)
        wbs.extend(c.flush())
        assert sorted(wbs) == [i * 64 for i in range(n_lines)]

    @given(
        st.lists(
            st.tuples(st.integers(0, 1 << 16), st.booleans()),
            max_size=300,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_occupancy_bounded(self, accesses):
        c = SetAssociativeCache(2048, 64, 4)
        for addr, w in accesses:
            c.access(addr, w)
        assert c.resident_lines <= 2048 // 64
        assert c.stats.accesses == len(accesses)

    @given(st.lists(st.integers(0, 1 << 14), min_size=1, max_size=200))
    @settings(max_examples=30, deadline=None)
    def test_writeback_conservation(self, addrs):
        """Every line ever written is written back at least once (no lost
        updates), and never more often than it was accessed."""
        c = SetAssociativeCache(1024, 64, 2)
        written = set()
        counts: dict[int, int] = {}
        wbs = []
        for a in addrs:
            line = c.line_address(a)
            written.add(line)
            counts[line] = counts.get(line, 0) + 1
            r = c.access(a, is_write=True)
            if r.writeback_address is not None:
                wbs.append(r.writeback_address)
        wbs.extend(c.flush())
        assert set(wbs) == written
        for line in written:
            assert wbs.count(line) <= counts[line]


class TestHierarchy:
    def test_gem5_config(self):
        h = gem5_avx_hierarchy()
        assert [c.size_bytes for c in h.levels] == [
            8 * 1024,
            64 * 1024,
            16 * 1024 * 1024,
        ]
        assert [c.ways for c in h.levels] == [8, 16, 64]

    def test_l1_hit_after_fill(self):
        h = gem5_avx_hierarchy()
        a1 = h.access(0, False)
        a2 = h.access(0, False)
        assert a1.hit_level == len(h.levels)  # memory
        assert a2.hit_level == 0

    def test_dirty_data_cascades_to_memory(self):
        h = CacheHierarchy(
            [
                SetAssociativeCache(512, 64, 2, name="L1"),
                SetAssociativeCache(1024, 64, 2, name="L2"),
            ]
        )
        n_lines = 100
        wbs = []
        for i in range(n_lines):
            wbs.extend(h.access(i * 64, True).memory_writebacks)
        wbs.extend(h.flush())
        assert set(wbs) == {i * 64 for i in range(n_lines)}

    def test_flush_counts_each_line_once(self):
        h = CacheHierarchy(
            [
                SetAssociativeCache(512, 64, 2),
                SetAssociativeCache(1024, 64, 2),
            ]
        )
        h.access(0, True)
        flushed = h.flush()
        assert flushed.count(0) == 1


class TestWritebackTrace:
    def test_sorting_and_len(self):
        tr = WritebackTrace(np.array([2.0, 1.0]), np.array([128, 64]))
        assert len(tr) == 2
        assert tr.times[0] == 1.0 and tr.addresses[0] == 64

    def test_from_events_roundtrip(self):
        events = [WritebackEvent(0.1, 64), WritebackEvent(0.2, 128)]
        tr = WritebackTrace.from_events(events)
        assert list(tr) == events

    def test_within(self):
        tr = WritebackTrace(np.array([0.0, 1.0, 2.0]), np.array([0, 64, 128]))
        sub = tr.within(0.5, 1.5)
        assert len(sub) == 1 and sub.addresses[0] == 64

    def test_merge_sorted(self):
        a = WritebackTrace(np.array([0.0, 2.0]), np.array([0, 0]))
        b = WritebackTrace(np.array([1.0]), np.array([64]))
        m = a.merge(b)
        assert list(m.times) == [0.0, 1.0, 2.0]

    def test_save_load(self, tmp_path):
        tr = WritebackTrace(np.array([0.0, 1.0]), np.array([0, 64]))
        path = tmp_path / "trace.npz"
        tr.save(path)
        back = WritebackTrace.load(path)
        np.testing.assert_array_equal(back.times, tr.times)
        np.testing.assert_array_equal(back.addresses, tr.addresses)

    def test_unique_lines_and_duration(self):
        tr = WritebackTrace(np.array([0.0, 1.0, 3.0]), np.array([0, 64, 0]))
        assert tr.unique_lines == 2
        assert tr.duration == 3.0


class TestDRAM:
    def test_row_hit_vs_miss(self):
        d = DRAMModel(n_banks=1, row_bytes=1024)
        first = d.access(0)
        second = d.access(64)  # same row
        assert first == d.timings.row_miss_cycles
        assert second == d.timings.row_hit_cycles

    def test_replay_matches_scalar(self):
        addrs = np.arange(0, 64 * 500, 64)
        d1 = DRAMModel()
        scalar = sum(d1.access(int(a)) for a in addrs)
        d2 = DRAMModel()
        vector = d2.replay(addrs)
        assert scalar == vector
        assert d1.row_hits == d2.row_hits

    def test_sequential_beats_shuffled(self):
        rng = np.random.default_rng(0)
        addrs = np.arange(0, 64 * 4096, 64)
        seq = DRAMModel().replay(addrs)
        shuf = DRAMModel().replay(rng.permutation(addrs))
        assert seq < shuf

    def test_extra_read_inflates_cycles(self):
        """Disaggregator adds a read per line update: replaying the trace
        with interleaved reads costs about 2x the cycles (Section VIII-D
        reports 2.48x sequential / 1.9x shuffled against its baseline)."""
        addrs = np.arange(0, 64 * 2048, 64)
        base = DRAMModel().replay(addrs)
        with_reads = DRAMModel().replay(np.repeat(addrs, 2))
        assert 1.5 < with_reads / base < 2.6

    def test_invalid_timings(self):
        with pytest.raises(ValueError):
            DRAMTimings(tRCD=0)


class TestAccessStreamFastPath:
    @given(
        st.integers(1, 400),
        st.integers(0, 32),
        st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_equivalent_to_scalar_sweep(self, n_lines, start_line, is_write):
        """The vectorized cold-sweep path is bit-equivalent to scalar
        accesses: same write-backs (order included), same stats, same
        final flush contents."""
        fast = SetAssociativeCache(2048, 64, 4)
        slow = SetAssociativeCache(2048, 64, 4)
        start = start_line * 64
        wb_fast = fast.access_stream(start, n_lines, is_write).tolist()
        wb_slow = []
        for i in range(n_lines):
            r = slow.access(start + i * 64, is_write)
            if r.writeback_address is not None:
                wb_slow.append(r.writeback_address)
        assert wb_fast == wb_slow
        assert fast.stats.misses == slow.stats.misses
        assert fast.stats.writebacks == slow.stats.writebacks
        assert sorted(fast.flush()) == sorted(slow.flush())

    def test_warm_cache_falls_back(self):
        c = SetAssociativeCache(2048, 64, 4)
        c.access(0, True)  # warm state -> scalar fallback
        wbs = c.access_stream(0, 100, True)
        ref = SetAssociativeCache(2048, 64, 4)
        ref.access(0, True)
        expected = []
        for i in range(100):
            r = ref.access(i * 64, True)
            if r.writeback_address is not None:
                expected.append(r.writeback_address)
        assert wbs.tolist() == expected

    def test_reads_produce_no_writebacks(self):
        c = SetAssociativeCache(1024, 64, 2)
        assert c.access_stream(0, 500, False).size == 0
        assert c.stats.writebacks == 0

    def test_validation(self):
        c = SetAssociativeCache(1024, 64, 2)
        with pytest.raises(ValueError):
            c.access_stream(0, -1, True)
        with pytest.raises(ValueError):
            c.access_stream(13, 5, True)

    def test_fast_path_is_faster(self):
        """The point of the fast path: a big cold sweep beats the scalar
        loop by a wide margin."""
        import time

        n = 20_000
        fast = SetAssociativeCache(64 * 1024, 64, 16)
        t0 = time.perf_counter()
        fast.access_stream(0, n, True)
        t_fast = time.perf_counter() - t0

        slow = SetAssociativeCache(64 * 1024, 64, 16)
        t0 = time.perf_counter()
        for i in range(n):
            slow.access(i * 64, True)
        t_slow = time.perf_counter() - t0
        assert t_fast < t_slow / 5
