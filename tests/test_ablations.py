"""Tests for the extra ablation experiments (DPU, granularity, dirty
bytes, interconnect generation)."""

import pytest

from repro.experiments.ablation_dirty_bytes import run_dirty_bytes_ablation
from repro.experiments.ablation_dpu import (
    dpu_requires_large_batch,
    run_dpu_ablation,
)
from repro.experiments.ablation_granularity import (
    run_buffer_granularity,
    run_stream_granularity,
)
from repro.experiments.ablation_interconnect import run_interconnect_ablation


class TestDPUAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_dpu_ablation(batch_sizes=(1, 4, 16, 64))

    def test_hiding_grows_with_batch(self, rows):
        assert dpu_requires_large_batch(rows)

    def test_teco_wins_at_small_batch(self, rows):
        assert rows[0]["teco_speedup"] > rows[0]["dpu_speedup"]

    def test_dpu_never_exceeds_full_hiding(self, rows):
        for r in rows:
            assert 0.0 <= r["dpu_hidden_fraction"] <= 1.0 + 1e-9


class TestGranularityAblation:
    @pytest.mark.slow
    def test_whole_tensor_exposes_everything(self):
        rows = run_stream_granularity(chunk_lines=(1, 0))
        fine, coarse = rows
        assert fine["overlap"] > 0.5
        assert coarse["overlap"] < 0.05
        assert fine["exposed"] < coarse["exposed"]

    @pytest.mark.slow
    def test_streaming_robust_to_chunk_size(self):
        """Chunking the fluid stream from 1 to 4096 lines barely changes
        exposure (bandwidth-limited, not granularity-limited) — which also
        validates the engines' STREAM_CHUNKS approximation."""
        rows = run_stream_granularity(chunk_lines=(1, 4096))
        assert rows[0]["exposed"] == pytest.approx(
            rows[1]["exposed"], rel=0.05
        )

    def test_buffer_sweep_shapes(self):
        rows = run_buffer_granularity(buffer_sizes=(2 * 2**20, 256 * 2**20))
        # Finer buffers pay more DMA setups under synchronous flushing.
        assert rows[0]["grad_exposed"] >= rows[1]["grad_exposed"]


@pytest.mark.slow
class TestDirtyBytesAblation:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_dirty_bytes_ablation(n_steps=40)

    def test_volume_monotone(self, rows):
        volumes = [r["wire_bytes"] for r in rows]
        assert volumes == sorted(volumes)

    def test_four_bytes_exact(self, rows):
        by = {r["dirty_bytes"]: r for r in rows}
        assert by[4]["perplexity_delta"] == pytest.approx(0.0, abs=1e-6)

    def test_speedup_ordering(self, rows):
        by = {r["dirty_bytes"]: r for r in rows}
        assert by[1]["speedup"] >= by[4]["speedup"]


class TestInterconnectAblation:
    def test_speedup_shrinks_with_faster_links(self):
        rows = run_interconnect_ablation()
        speedups = [r["speedup"] for r in rows]
        assert speedups == sorted(speedups, reverse=True)

    def test_teco_still_helps_on_gen5(self):
        rows = run_interconnect_ablation()
        assert rows[-1]["gen"] == "GEN5"
        assert rows[-1]["speedup"] > 1.05
