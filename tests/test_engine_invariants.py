"""Property-based invariants of the DES engines and the CPU roofline."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.memsim.cpu import CPUModel, gem5_avx_cpu
from repro.models import MODEL_REGISTRY, get_model
from repro.offload import HardwareParams, SystemKind, simulate_system

MODELS = [n for n in MODEL_REGISTRY if n != "gpt2-11b"]  # keep runs fast

hw_variants = st.builds(
    lambda eff, sat, peak: dataclasses.replace(
        HardwareParams.paper_default(),
        gpu_max_efficiency=eff,
        gpu_half_sat_u=sat,
        gpu_peak_flops=peak,
    ),
    eff=st.floats(0.05, 0.5),
    sat=st.floats(1.0, 20.0),
    peak=st.floats(20e12, 300e12),
)


class TestEngineInvariants:
    @given(
        model=st.sampled_from(MODELS),
        batch=st.integers(1, 32),
        hw=hw_variants,
    )
    @settings(max_examples=40, deadline=None)
    def test_system_ordering(self, model, batch, hw):
        """Across arbitrary hardware calibrations: compute is identical
        for all systems, communication exposure only improves from
        baseline -> TECO-CXL -> TECO-Reduction, and totals order the
        same way."""
        spec = get_model(model)
        base = simulate_system(SystemKind.ZERO_OFFLOAD, spec, batch, hw)
        cxl = simulate_system(SystemKind.TECO_CXL, spec, batch, hw)
        red = simulate_system(SystemKind.TECO_REDUCTION, spec, batch, hw)
        eps = 1e-9
        assert base.compute == pytest.approx(cxl.compute, rel=1e-9)
        assert cxl.compute == pytest.approx(red.compute, rel=1e-9)
        assert red.communication_exposed <= cxl.communication_exposed + eps
        assert cxl.communication_exposed <= base.communication_exposed + eps
        assert red.total <= cxl.total + eps <= base.total + 2 * eps

    @given(
        model=st.sampled_from(MODELS),
        batch=st.integers(1, 32),
    )
    @settings(max_examples=30, deadline=None)
    def test_exposure_bounded_by_raw_transfer(self, model, batch):
        """Exposure never exceeds the raw serialized transfer time plus
        per-transfer setup overheads."""
        spec = get_model(model)
        base = simulate_system(SystemKind.ZERO_OFFLOAD, spec, batch)
        setups = 64 * base.wire_bytes / base.wire_bytes  # loose slack unit
        assert (
            base.grad_transfer_exposed
            <= base.grad_transfer_raw * 1.05 + 1e-3
        )
        assert (
            base.param_transfer_exposed
            <= base.param_transfer_raw * 1.05 + 1e-3
        )
        teco = simulate_system(SystemKind.TECO_CXL, spec, batch)
        assert teco.grad_transfer_exposed <= teco.grad_transfer_raw + 1e-6
        assert teco.param_transfer_exposed <= teco.param_transfer_raw + 1e-6

    @given(batch=st.integers(1, 64))
    @settings(max_examples=20, deadline=None)
    def test_breakdown_components_nonnegative(self, batch):
        spec = get_model("bert-large-cased")
        for kind in SystemKind:
            bd = simulate_system(kind, spec, batch)
            assert bd.total >= bd.compute >= 0
            assert bd.communication_fraction <= 1.0


class TestCPURoofline:
    def test_adam_is_memory_bound_on_table2_machine(self):
        """The justification for the calibrated cpu_stream_bandwidth: the
        ADAM sweep's arithmetic intensity (12/28 FLOP/byte) sits far below
        the Table II machine's roofline corner (~18 FLOP/byte)."""
        cpu = gem5_avx_cpu()
        assert cpu.adam_is_memory_bound()
        assert cpu.arithmetic_intensity_break_even > 5.0

    def test_sweep_time_matches_calibrated_constant(self):
        """Roofline sweep time equals the HardwareParams figure (both are
        traffic / 155 GB/s in the memory-bound regime)."""
        cpu = gem5_avx_cpu()
        hw = HardwareParams.paper_default()
        bert = get_model("bert-large-cased")
        assert cpu.adam_sweep_time(bert.stored_params) == pytest.approx(
            hw.adam_time(bert), rel=1e-6
        )

    def test_compute_bound_regime_exists(self):
        """A narrow-memory machine flips the sweep to compute-bound."""
        from repro.utils.units import GB, Bandwidth

        slow_cores = CPUModel(
            cores=1, clock_hz=1e9, flops_per_core_cycle=1.0,
            memory_bandwidth=Bandwidth(1000 * GB),
        )
        assert not slow_cores.adam_is_memory_bound()

    def test_validation(self):
        with pytest.raises(ValueError):
            CPUModel(cores=0)
        with pytest.raises(ValueError):
            gem5_avx_cpu().adam_sweep_time(0)
        with pytest.raises(ValueError):
            gem5_avx_cpu().compute_bound_time(-1)
