"""Tests for modules, attention, transformer and GCNII models."""

import numpy as np
import pytest

from repro.tensor import (
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    Sequential,
    Tensor,
)
from repro.tensor.attention import MultiHeadAttention, causal_mask
from repro.tensor.gnn import GCNII, normalized_adjacency
from repro.tensor.transformer import (
    TinySeq2Seq,
    TinyTransformerClassifier,
    TinyTransformerLM,
    TransformerStack,
)
from repro.optim import Adam

RNG = lambda s=0: np.random.default_rng(s)


class TestModules:
    def test_linear_shapes_and_grads(self):
        lin = Linear(4, 3, RNG())
        x = Tensor(np.ones((2, 4), dtype=np.float32))
        y = lin(x)
        assert y.shape == (2, 3)
        y.sum().backward()
        assert lin.weight.grad is not None and lin.bias.grad is not None

    def test_parameter_names_deterministic(self):
        class Net(Module):
            def __init__(self):
                super().__init__()
                self.a = Linear(2, 2, RNG())
                self.b = Linear(2, 2, RNG(1))

        names = [n for n, _ in Net().parameters()]
        assert names == ["a.weight", "a.bias", "b.weight", "b.bias"]

    def test_num_parameters(self):
        lin = Linear(4, 3, RNG())
        assert lin.num_parameters() == 4 * 3 + 3

    def test_layernorm_normalizes(self):
        ln = LayerNorm(8)
        x = Tensor(RNG().standard_normal((5, 8)).astype(np.float32) * 7 + 3)
        y = ln(x).data
        np.testing.assert_allclose(y.mean(-1), np.zeros(5), atol=1e-4)
        np.testing.assert_allclose(y.std(-1), np.ones(5), atol=1e-2)

    def test_layernorm_gradcheck(self):
        ln = LayerNorm(4)
        x = Tensor(
            RNG(3).standard_normal((2, 4)).astype(np.float32),
            requires_grad=True,
        )
        (ln(x) * Tensor(np.arange(4, dtype=np.float32))).sum().backward()
        assert x.grad is not None
        assert np.all(np.isfinite(x.grad))

    def test_embedding_lookup(self):
        emb = Embedding(10, 4, RNG())
        out = emb(np.array([[1, 2], [3, 1]]))
        assert out.shape == (2, 2, 4)
        np.testing.assert_array_equal(out.data[0, 0], emb.weight.data[1])

    def test_state_dict_roundtrip(self):
        net = Sequential(Linear(3, 4, RNG()), Linear(4, 2, RNG(1)))
        state = net.state_dict()
        net2 = Sequential(Linear(3, 4, RNG(2)), Linear(4, 2, RNG(3)))
        net2.load_state_dict(state)
        x = Tensor(np.ones((1, 3), dtype=np.float32))
        np.testing.assert_allclose(net(x).data, net2(x).data, rtol=1e-6)

    def test_state_dict_mismatch(self):
        net = Linear(3, 4, RNG())
        with pytest.raises(KeyError):
            net.load_state_dict({"bogus": np.zeros(1)})

    def test_train_eval_propagates(self):
        net = Sequential(Dropout(0.5, RNG()), Linear(2, 2, RNG()))
        net.eval()
        assert not net.layers[0].training

    def test_zero_grad(self):
        lin = Linear(2, 2, RNG())
        lin(Tensor(np.ones((1, 2), dtype=np.float32))).sum().backward()
        lin.zero_grad()
        assert lin.weight.grad is None


class TestAttention:
    def test_output_shape(self):
        attn = MultiHeadAttention(8, 2, RNG())
        x = Tensor(RNG(1).standard_normal((2, 5, 8)).astype(np.float32))
        assert attn(x).shape == (2, 5, 8)

    def test_head_divisibility(self):
        with pytest.raises(ValueError):
            MultiHeadAttention(9, 2, RNG())

    def test_causal_mask_blocks_future(self):
        """With a causal mask, output at position t must not depend on
        tokens after t."""
        attn = MultiHeadAttention(8, 2, RNG(2))
        x1 = RNG(3).standard_normal((1, 4, 8)).astype(np.float32)
        x2 = x1.copy()
        x2[0, 3] += 10.0  # perturb the last token only
        m = causal_mask(4)
        y1 = attn(Tensor(x1), mask=m).data
        y2 = attn(Tensor(x2), mask=m).data
        np.testing.assert_allclose(y1[0, :3], y2[0, :3], rtol=1e-4, atol=1e-5)
        assert not np.allclose(y1[0, 3], y2[0, 3])

    def test_cross_attention_uses_memory(self):
        attn = MultiHeadAttention(8, 2, RNG(4))
        q = Tensor(RNG(5).standard_normal((1, 3, 8)).astype(np.float32))
        kv1 = Tensor(RNG(6).standard_normal((1, 6, 8)).astype(np.float32))
        kv2 = Tensor(RNG(7).standard_normal((1, 6, 8)).astype(np.float32))
        assert not np.allclose(attn(q, kv=kv1).data, attn(q, kv=kv2).data)

    def test_gradients_flow_to_all_projections(self):
        attn = MultiHeadAttention(8, 2, RNG(8))
        x = Tensor(RNG(9).standard_normal((1, 3, 8)).astype(np.float32))
        attn(x).sum().backward()
        for name, p in attn.parameters():
            assert p.grad is not None, name


class TestTransformerModels:
    def test_lm_forward_shape(self):
        lm = TinyTransformerLM(vocab=50, dim=16, n_heads=2, n_layers=2,
                               max_seq=12, rng=RNG())
        ids = RNG(1).integers(0, 50, (3, 8))
        assert lm(ids).shape == (3, 8, 50)

    def test_lm_trains_on_repetitive_data(self):
        """A tiny LM must be able to overfit a short periodic stream."""
        rng = RNG(2)
        lm = TinyTransformerLM(vocab=8, dim=32, n_heads=2, n_layers=2,
                               max_seq=16, rng=rng)
        pattern = np.tile(np.arange(8), 8)
        batch = np.stack([pattern[i : i + 12] for i in range(4)])
        opt = Adam(lm.parameter_list(), lr=3e-3)
        first = lm.loss(batch).item()
        for _ in range(60):
            opt.zero_grad()
            loss = lm.loss(batch)
            loss.backward()
            opt.step()
        assert loss.item() < first * 0.3

    def test_share_layers_reduces_parameters(self):
        """Albert-style sharing: same depth, ~1/n the block parameters."""
        full = TransformerStack(16, 2, 4, RNG(3), share_layers=False)
        shared = TransformerStack(16, 2, 4, RNG(4), share_layers=True)
        assert shared.num_parameters() * 3 < full.num_parameters()

    def test_shared_stack_forward_works(self):
        stack = TransformerStack(16, 2, 4, RNG(5), share_layers=True)
        x = Tensor(RNG(6).standard_normal((2, 5, 16)).astype(np.float32))
        assert stack(x).shape == (2, 5, 16)

    def test_classifier_learns_parity_of_first_token(self):
        rng = RNG(7)
        clf = TinyTransformerClassifier(
            vocab=10, dim=16, n_heads=2, n_layers=1, max_seq=8,
            n_classes=2, rng=rng,
        )
        ids = rng.integers(0, 10, (32, 6))
        labels = ids[:, 0] % 2
        opt = Adam(clf.parameter_list(), lr=3e-3)
        for _ in range(80):
            opt.zero_grad()
            clf.loss(ids, labels).backward()
            opt.step()
        assert clf.accuracy(ids, labels) > 0.9

    def test_seq2seq_shapes_and_training_signal(self):
        rng = RNG(8)
        model = TinySeq2Seq(vocab=12, dim=16, n_heads=2, n_layers=1,
                            max_seq=10, rng=rng)
        src = rng.integers(0, 12, (2, 6))
        tgt = rng.integers(0, 12, (2, 5))
        logits = model(src, tgt)
        assert logits.shape == (2, 5, 12)
        loss = model.loss(src, tgt)
        loss.backward()
        grads = [p.grad is not None for _, p in model.parameters()]
        assert all(grads)

    def test_sequence_too_long_rejected(self):
        lm = TinyTransformerLM(vocab=10, dim=8, n_heads=2, n_layers=1,
                               max_seq=4, rng=RNG())
        with pytest.raises(ValueError):
            lm(np.zeros((1, 6), dtype=int))

    def test_perplexity_positive(self):
        lm = TinyTransformerLM(vocab=10, dim=8, n_heads=2, n_layers=1,
                               max_seq=8, rng=RNG())
        ppl = lm.perplexity(RNG(1).integers(0, 10, (2, 6)))
        assert ppl > 1.0


class TestGCNII:
    def _toy_graph(self, rng, n=20, d=8, classes=3):
        adj = (rng.random((n, n)) < 0.2).astype(np.float32)
        adj = np.maximum(adj, adj.T)
        np.fill_diagonal(adj, 0)
        feats = rng.standard_normal((n, d)).astype(np.float32)
        labels = rng.integers(0, classes, n)
        return feats, normalized_adjacency(adj), labels

    def test_normalized_adjacency_rows(self):
        adj = np.array([[0, 1], [1, 0]], dtype=np.float32)
        a_hat = normalized_adjacency(adj)
        assert a_hat.shape == (2, 2)
        # symmetric and bounded
        np.testing.assert_allclose(a_hat, a_hat.T)
        assert np.all(a_hat <= 1.0 + 1e-6)

    def test_bad_adjacency(self):
        with pytest.raises(ValueError):
            normalized_adjacency(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            normalized_adjacency(-np.ones((2, 2)))

    def test_forward_shape(self):
        rng = RNG(10)
        feats, a_hat, labels = self._toy_graph(rng)
        model = GCNII(8, 16, 3, n_layers=4, rng=rng)
        assert model(feats, a_hat).shape == (20, 3)

    def test_full_graph_training_improves(self):
        rng = RNG(11)
        feats, a_hat, labels = self._toy_graph(rng)
        model = GCNII(8, 16, 3, n_layers=2, rng=rng)
        opt = Adam(model.parameter_list(), lr=5e-3)
        first = model.loss(feats, a_hat, labels).item()
        for _ in range(60):
            opt.zero_grad()
            model.loss(feats, a_hat, labels).backward()
            opt.step()
        assert model.loss(feats, a_hat, labels).item() < first * 0.7

    def test_deep_stack_stability(self):
        """GCNII's initial-residual keeps 16-layer stacks finite."""
        rng = RNG(12)
        feats, a_hat, labels = self._toy_graph(rng)
        model = GCNII(8, 16, 3, n_layers=16, rng=rng)
        out = model(feats, a_hat)
        assert np.all(np.isfinite(out.data))
