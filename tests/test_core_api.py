"""Tests for the TECO public API (TecoConfig / TecoSystem / Listing 1)."""

import numpy as np
import pytest

from repro.coherence import CoherenceMode
from repro.core import TecoConfig, TecoSystem, check_activation, cxl_fence
from repro.core.api import make_timing_simulator
from repro.dba.activation import default_policy
from repro.interconnect import CacheLinePayload, CXLController
from repro.offload import TrainerMode
from repro.tensor.transformer import TinyTransformerLM


def tiny_lm(seed=0):
    return TinyTransformerLM(
        vocab=16, dim=16, n_heads=2, n_layers=1, max_seq=12,
        rng=np.random.default_rng(seed),
    )


def lm_batch(seed=1):
    rng = np.random.default_rng(seed)
    return (rng.integers(0, 16, (4, 10)),)


class TestTecoConfig:
    def test_defaults_match_paper(self):
        cfg = TecoConfig()
        assert cfg.act_aft_steps == 500
        assert cfg.dirty_bytes == 2
        assert cfg.coherence is CoherenceMode.UPDATE
        assert cfg.trainer_mode is TrainerMode.TECO_REDUCTION

    def test_no_dba_maps_to_cxl_mode(self):
        assert TecoConfig(use_dba=False).trainer_mode is TrainerMode.TECO_CXL

    def test_validation(self):
        with pytest.raises(ValueError):
            TecoConfig(act_aft_steps=-1)
        with pytest.raises(ValueError):
            TecoConfig(dirty_bytes=0)
        with pytest.raises(ValueError):
            TecoConfig(gradient_buffer_bytes=0)

    def test_policy_factory_independent(self):
        cfg = TecoConfig(act_aft_steps=1)
        p1, p2 = cfg.policy(), cfg.policy()
        p1.check_activation(5)
        assert not p2.active


class TestTecoSystem:
    def test_giant_cache_sizing_rule(self):
        model = tiny_lm()
        system = TecoSystem(model)
        assert system.giant_cache_bytes >= model.num_parameters() * 4
        assert system.address_map.is_giant_cached(
            system.address_map.regions["parameters"].base
        )

    def test_listing1_flow(self):
        """The two-line user API: check_activation between backward and
        step, DBA flipping on at the configured step."""
        system = TecoSystem(tiny_lm(), TecoConfig(act_aft_steps=2))
        batch = lm_batch()
        for i in range(4):
            system.train_step(*batch)
            active = system.check_activation(i)
            assert active == (i >= 2)
        assert system.dba_active
        assert system.aggregator.register.enabled
        assert system.disaggregator.register.enabled

    def test_summary(self):
        system = TecoSystem(tiny_lm())
        s = system.summary()
        assert s["parameters"] == system.model.num_parameters()
        assert s["coherence"] == "update"
        assert s["steps_run"] == 0

    def test_training_reduces_loss(self):
        system = TecoSystem(tiny_lm(), TecoConfig(learning_rate=3e-3))
        batch = lm_batch()
        first = system.train_step(*batch).loss
        for _ in range(30):
            last = system.train_step(*batch).loss
        assert last < first

    def test_empty_model_rejected(self):
        from repro.tensor.nn import Module

        class Empty(Module):
            pass

        with pytest.raises(ValueError):
            TecoSystem(Empty())


class TestModuleLevelAPI:
    def test_check_activation_uses_default_policy(self):
        default_policy.reset()
        try:
            assert not check_activation(0)
            assert check_activation(default_policy.act_aft_steps)
        finally:
            default_policy.reset()

    def test_cxl_fence_over_controllers(self):
        sim = make_timing_simulator()
        c1 = CXLController(sim, name="a")
        c2 = CXLController(sim, name="b")
        done = []

        def main(sim):
            yield c1.send_line(CacheLinePayload(0))
            yield c2.send_line(CacheLinePayload(64))
            yield cxl_fence([c1, c2])
            done.append(sim.now)

        sim.process(main(sim))
        sim.run()
        assert len(done) == 1 and done[0] > 0

    def test_cxl_fence_requires_controllers(self):
        with pytest.raises(ValueError):
            cxl_fence([])
