"""Tests for ADAM (both forms), clipping and mixed precision."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optim import (
    Adam,
    FlatAdam,
    LossScaler,
    clip_flat_gradients,
    clip_grad_norm,
    fp16_round_trip,
    to_fp16,
)
from repro.tensor import Tensor


def reference_adam(params, grads, m, v, t, lr, b1, b2, eps):
    """Straightforward textbook ADAM for cross-checking."""
    m = b1 * m + (1 - b1) * grads
    v = b2 * v + (1 - b2) * grads**2
    mh = m / (1 - b1**t)
    vh = v / (1 - b2**t)
    return params - lr * mh / (np.sqrt(vh) + eps), m, v


class TestFlatAdam:
    def test_matches_reference(self):
        rng = np.random.default_rng(0)
        n = 1000
        params = rng.standard_normal(n).astype(np.float32)
        ref_p = params.copy().astype(np.float64)
        m = np.zeros(n)
        v = np.zeros(n)
        opt = FlatAdam(n, lr=1e-2)
        for t in range(1, 4):
            grads = rng.standard_normal(n).astype(np.float32)
            opt.step(params, grads)
            ref_p, m, v = reference_adam(
                ref_p, grads.astype(np.float64), m, v, t, 1e-2, 0.9, 0.999, 1e-8
            )
        np.testing.assert_allclose(params, ref_p, rtol=1e-4, atol=1e-5)

    def test_blocked_equals_unblocked(self):
        rng = np.random.default_rng(1)
        n = 517  # deliberately not a block multiple
        grads = rng.standard_normal(n).astype(np.float32)
        p1 = rng.standard_normal(n).astype(np.float32)
        p2 = p1.copy()
        o1, o2 = FlatAdam(n), FlatAdam(n)
        o1.step(p1, grads, block=None)
        o2.step(p2, grads, block=64)
        np.testing.assert_array_equal(p1, p2)

    def test_block_callback_covers_range_in_order(self):
        n = 100
        opt = FlatAdam(n)
        seen = []
        opt.step(
            np.zeros(n, dtype=np.float32),
            np.ones(n, dtype=np.float32),
            block=32,
            on_block=lambda s, e: seen.append((s, e)),
        )
        assert seen == [(0, 32), (32, 64), (64, 96), (96, 100)]

    def test_minimizes_quadratic(self):
        n = 10
        target = np.linspace(-1, 1, n).astype(np.float32)
        params = np.zeros(n, dtype=np.float32)
        opt = FlatAdam(n, lr=0.05)
        for _ in range(300):
            grads = 2 * (params - target)
            opt.step(params, grads.astype(np.float32))
        np.testing.assert_allclose(params, target, atol=0.02)

    def test_weight_decay_shrinks(self):
        n = 4
        params = np.ones(n, dtype=np.float32) * 10
        opt = FlatAdam(n, lr=0.1, weight_decay=0.1)
        for _ in range(50):
            opt.step(params, np.zeros(n, dtype=np.float32))
        assert np.all(np.abs(params) < 10)

    def test_state_bytes(self):
        opt = FlatAdam(1000)
        assert opt.state_bytes == 2 * 1000 * 4

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            FlatAdam(0)
        with pytest.raises(ValueError):
            FlatAdam(10, lr=0)
        with pytest.raises(ValueError):
            FlatAdam(10, beta1=1.0)
        opt = FlatAdam(10)
        with pytest.raises(ValueError):
            opt.step(np.zeros(5, np.float32), np.zeros(5, np.float32))
        with pytest.raises(TypeError):
            opt.step(np.zeros(10), np.zeros(10))

    @given(st.integers(1, 200), st.integers(1, 64))
    @settings(max_examples=20, deadline=None)
    def test_any_block_size_equivalent(self, n, block):
        rng = np.random.default_rng(n)
        grads = rng.standard_normal(n).astype(np.float32)
        p1 = rng.standard_normal(n).astype(np.float32)
        p2 = p1.copy()
        FlatAdam(n).step(p1, grads, block=None)
        FlatAdam(n).step(p2, grads, block=block)
        np.testing.assert_array_equal(p1, p2)


class TestTensorAdam:
    def test_matches_flat_adam(self):
        rng = np.random.default_rng(2)
        data = rng.standard_normal(64).astype(np.float32)
        grad = rng.standard_normal(64).astype(np.float32)

        t = Tensor(data.copy(), requires_grad=True)
        t.grad = grad.copy()
        Adam([t], lr=1e-2).step()

        flat = data.copy()
        FlatAdam(64, lr=1e-2).step(flat, grad)
        np.testing.assert_allclose(t.data, flat, rtol=1e-6)

    def test_skips_params_without_grad(self):
        t = Tensor(np.ones(3, dtype=np.float32), requires_grad=True)
        opt = Adam([t])
        opt.step()  # no grad: unchanged
        np.testing.assert_array_equal(t.data, np.ones(3))

    def test_rejects_empty_or_nongrad(self):
        with pytest.raises(ValueError):
            Adam([])
        with pytest.raises(ValueError):
            Adam([Tensor(np.ones(2))])


class TestClipping:
    def test_flat_clip_to_norm(self):
        g = np.full(4, 3.0, dtype=np.float32)  # norm 6
        pre = clip_flat_gradients(g, 1.0)
        assert pre == pytest.approx(6.0)
        assert np.linalg.norm(g) == pytest.approx(1.0, rel=1e-5)

    def test_no_clip_under_norm(self):
        g = np.full(4, 0.1, dtype=np.float32)
        before = g.copy()
        clip_flat_gradients(g, 10.0)
        np.testing.assert_array_equal(g, before)

    def test_tensor_clip_global(self):
        a = Tensor(np.zeros(4, np.float32), requires_grad=True)
        b = Tensor(np.zeros(4, np.float32), requires_grad=True)
        a.grad = np.full(4, 3.0, dtype=np.float32)
        b.grad = np.full(4, 4.0, dtype=np.float32)
        total = clip_grad_norm([a, b], 1.0)
        assert total == pytest.approx(10.0)
        combined = np.sqrt(
            np.sum(a.grad.astype(np.float64) ** 2)
            + np.sum(b.grad.astype(np.float64) ** 2)
        )
        assert combined == pytest.approx(1.0, rel=1e-5)

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_flat_gradients(np.ones(2, np.float32), 0.0)


class TestMixedPrecision:
    def test_fp16_round_trip_loses_precision(self):
        x = np.array([1.0 + 2**-12], dtype=np.float32)
        assert fp16_round_trip(x)[0] != x[0]
        assert to_fp16(x).dtype == np.float16

    def test_scaler_overflow_backoff(self):
        s = LossScaler(init_scale=1024)
        grads = np.array([np.inf], dtype=np.float32)
        assert s.check_overflow(grads)
        assert not s.update(True)  # skip step
        assert s.scale == 512

    def test_scaler_growth(self):
        s = LossScaler(init_scale=2, growth_interval=3)
        for _ in range(3):
            assert s.update(False)
        assert s.scale == 4

    def test_scaler_max_cap(self):
        s = LossScaler(init_scale=2.0**24, growth_interval=1, max_scale=2.0**24)
        s.update(False)
        assert s.scale == 2.0**24

    def test_unscale(self):
        s = LossScaler(init_scale=4)
        g = np.array([8.0], dtype=np.float32)
        s.unscale(g)
        assert g[0] == 2.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LossScaler(init_scale=0)
        with pytest.raises(ValueError):
            LossScaler(growth_interval=0)
        with pytest.raises(ValueError):
            LossScaler(backoff=1.5)
