"""Integration tests: every experiment driver reproduces its paper shape.

These run the same code paths as the benchmark harness, at reduced scale
where the full experiment is long.
"""

import numpy as np
import pytest

from repro.experiments import (
    ablation_invalidation,
    comm_volume,
    fig2,
    fig10,
    fig11_table4,
    fig12,
    fig13,
    lammps,
    overheads,
    table1,
    table6,
    table7,
    table8,
)


class TestTable1:
    def test_fractions_decrease_and_match_band(self):
        rows = table1.run_table1()
        fracs = [r["comm_fraction"] for r in rows]
        assert fracs == sorted(fracs, reverse=True)
        for r in rows:
            assert abs(r["comm_fraction"] - r["paper"]) < 0.08

    def test_render(self):
        out = table1.render_table1(table1.run_table1((4,)))
        assert "Table I" in out


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return fig2.run_fig2(n_steps=25)

    def test_parameters_low_byte_dominated(self, result):
        """Observation 2: most changed parameters change only low bytes."""
        low2 = (
            result.param_means["last_byte"]
            + result.param_means["last_two_bytes"]
        )
        assert low2 > 0.6

    def test_gradients_change_all_bytes(self, result):
        """Figure 2(b): gradients have no dominant low-byte pattern."""
        assert result.grad_means["other"] > 0.5

    def test_per_step_rows_complete(self, result):
        assert len(result.param_steps) == 25
        for row in result.param_steps:
            total = row["last_byte"] + row["last_two_bytes"] + row["other"]
            assert total == pytest.approx(1.0, abs=1e-6) or row[
                "changed_fraction"
            ] == 0.0

    def test_too_few_steps(self):
        with pytest.raises(ValueError):
            fig2.run_fig2(n_steps=1)


class TestInvalidationAblation:
    def test_update_always_wins(self):
        rows = ablation_invalidation.run_invalidation_ablation()
        for r in rows:
            assert r["slowdown"] > 0
        avg = ablation_invalidation.average_slowdown(rows)
        assert 0.25 < avg < 0.9  # paper: +56.6% average

    def test_render(self):
        out = ablation_invalidation.render_ablation(
            ablation_invalidation.run_invalidation_ablation()
        )
        assert "average" in out


class TestFig10:
    @pytest.mark.slow
    def test_same_trend(self):
        result = fig10.run_fig10(n_steps=60, act_aft_steps=15)
        assert len(result.baseline_curve) == 60
        assert result.same_trend

    def test_dba_effect_nonzero(self):
        result = fig10.run_fig10(n_steps=60, act_aft_steps=15)
        # after activation the curves are not bit-identical
        post = range(20, 60)
        diffs = [
            abs(result.baseline_curve[i] - result.teco_curve[i]) for i in post
        ]
        assert max(diffs) > 0


class TestFig11Table4:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig11_table4.run_fig11_table4()

    def test_t5_oom_marked(self, rows):
        oom = [r for r in rows if r.get("oom")]
        assert len(oom) == 1
        assert oom[0]["model"] == "t5-large" and oom[0]["batch"] == 16

    def test_gcnii_single_batch(self, rows):
        assert sum(r["model"] == "gcnii" for r in rows) == 1

    def test_speedups_close_to_paper(self, rows):
        for r in rows:
            if r["paper"] is None or r.get("oom"):
                continue
            assert r["reduction_speedup"] == pytest.approx(
                r["paper"], abs=0.35
            ), (r["model"], r["batch"])

    def test_reduction_geq_cxl(self, rows):
        for r in rows:
            if r.get("oom"):
                continue
            assert r["reduction_speedup"] >= r["cxl_speedup"] - 1e-9

    def test_render(self, rows):
        out = fig11_table4.render_speedups(rows)
        assert "OOM" in out


class TestFig12:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig12.run_fig12()

    def test_grad_transfer_hidden_at_batch8(self, rows):
        teco8 = [
            r
            for r in rows
            if r["batch"] == 8 and r["system"] != "zero-offload"
        ]
        for r in teco8:
            assert r["grad_transfer_exposed"] < 0.05 * r["grad_transfer_raw"] + 1e-4

    def test_teco_hides_most_gradient_time_at_batch4(self, rows):
        """Paper: TECO hides gradient transfer by at least 69% at small
        batch."""
        r = next(
            r for r in rows if r["batch"] == 4 and r["system"] == "teco-cxl"
        )
        hidden = 1 - r["grad_transfer_exposed"] / r["grad_transfer_raw"]
        assert hidden > 0.69

    def test_dba_hides_param_transfer(self, rows):
        r = next(
            r
            for r in rows
            if r["batch"] == 4 and r["system"] == "teco-reduction"
        )
        assert r["param_transfer_exposed"] < 0.02 * r["param_transfer_raw"] + 1e-4

    def test_render(self, rows):
        assert "fwd+bwd" in fig12.render_fig12(rows)


class TestTable6:
    def test_11b_smallest_speedup(self):
        rows = table6.run_table6()
        by_name = {r["model"]: r["reduction_speedup"] for r in rows}
        assert min(by_name, key=by_name.get) == "gpt2-11b"

    def test_11b_compute_bound(self):
        rows = table6.run_table6()
        r = next(r for r in rows if r["model"] == "gpt2-11b")
        assert r["compute_fraction"] > 0.55  # paper: 63.4%

    def test_speedups_in_band(self):
        for r in table6.run_table6():
            assert 1.1 < r["reduction_speedup"] < 2.1


class TestFig13:
    @pytest.fixture(scope="class")
    def rows(self):
        return fig13.run_fig13(sweep=(0, 30, 60), total_steps=60)

    def test_speedup_decreases_with_later_activation(self, rows):
        speedups = [r["speedup"] for r in rows]
        assert speedups == sorted(speedups, reverse=True)
        assert speedups[0] > 1.4  # paper: 1.63 at step 0
        assert speedups[-1] < speedups[0]

    def test_mixed_speedup_bounds(self):
        s0 = fig13.mixed_speedup(0, 1775)
        s_all = fig13.mixed_speedup(1775, 1775)
        assert s0 > s_all
        with pytest.raises(ValueError):
            fig13.mixed_speedup(2000, 1775)

    def test_perplexities_finite(self, rows):
        assert all(np.isfinite(r["perplexity"]) for r in rows)


class TestTable7:
    def test_ratio_band(self):
        rows = table7.run_table7(n_steps=10_000)
        ratio = rows[0]["hours"] / rows[1]["hours"]
        assert 2.0 < ratio < 4.0  # paper: 2.86x

    def test_render(self):
        assert "ratio" in table7.render_table7(table7.run_table7(1000))


class TestTable8:
    @pytest.fixture(scope="class")
    def rows(self):
        return table8.run_table8()

    def test_lz4_always_slower_than_teco(self, rows):
        for r in rows:
            assert r["normalized_time"] > 1.5  # paper: at least ~1.95x

    def test_dense_ratio_small(self, rows):
        assert rows[0]["measured_dense_ratio"] < 0.36

    def test_four_transformers(self, rows):
        assert len(rows) == 4

    def test_render(self, rows):
        assert "LZ4" in table8.render_table8(rows)


class TestCommVolume:
    def test_headline_numbers(self):
        rows = comm_volume.run_comm_volume()
        avg = comm_volume.average(rows, "comm_overhead_reduction")
        assert avg > 0.85  # paper: 93.7%
        for r in rows:
            assert r["param_volume_reduction"] == pytest.approx(0.5, abs=0.08)
            assert 0.0 < r["dba_perf_contribution"] < 0.12  # paper 0.8-7.3%


class TestOverheads:
    def test_hw_costs_match_paper(self):
        rows = overheads.run_hw_costs()
        by_unit = {r["unit"]: r for r in rows}
        assert by_unit["aggregator"]["power_w"] == pytest.approx(0.0127, rel=1e-4)
        assert by_unit["disaggregator"]["latency_ns"] == pytest.approx(1.126, rel=1e-4)
        for r in rows:
            assert r["pipelined_overhead_ns"] == 0.0

    def test_dram_inflation_band(self):
        out = overheads.run_dram_overhead(n_lines=4096)
        assert 1.8 < out["sequential"] < 2.6  # paper: 2.48x
        assert 1.3 < out["shuffled"] < 2.1  # paper: 1.9x
        assert out["sequential"] > out["shuffled"]

    def test_render(self):
        assert "DRAM" in overheads.render_overheads()


class TestLammps:
    def test_section7_shape(self):
        result = lammps.run_lammps(n_side=4, n_steps=12)
        assert 0.10 < result["improvement"] < 0.30  # paper: 21.5%
        assert 0.08 < result["volume_reduction"] < 0.30  # paper: 17%
        assert result["cxl_share"] > result["dba_share"]  # paper: 78/22
        assert result["low_byte_fraction"] > 0.4

    def test_render(self):
        out = lammps.render_lammps(lammps.run_lammps(n_side=3, n_steps=6))
        assert "LJ melt" in out
