"""Additional kernel coverage: interrupts, peek, controller batching,
and the fluid-vs-queued timing equivalence that justifies the engines'
stream approximation."""

import numpy as np
import pytest

from repro.interconnect import CacheLinePayload, CXLController, CXLLinkModel
from repro.sim import Interrupt, Resource, SerialLink, Simulator
from repro.utils.units import Bandwidth


class TestProcessInterrupt:
    def test_interrupt_wakes_sleeper(self):
        sim = Simulator()
        log = []

        def sleeper(sim):
            try:
                yield sim.timeout(100.0)
                log.append("overslept")
            except Interrupt as exc:
                log.append(("interrupted", sim.now, exc.cause))

        def waker(sim, target):
            yield sim.timeout(3.0)
            target.interrupt("wake up")

        p = sim.process(sleeper(sim))
        sim.process(waker(sim, p))
        sim.run()
        assert log == [("interrupted", 3.0, "wake up")]

    def test_interrupt_completed_process_is_noop(self):
        sim = Simulator()

        def quick(sim):
            yield sim.timeout(1.0)

        p = sim.process(quick(sim))
        sim.run()
        p.interrupt()  # must not raise
        sim.run()

    def test_is_alive(self):
        sim = Simulator()

        def proc(sim):
            yield sim.timeout(1.0)

        p = sim.process(proc(sim))
        assert p.is_alive
        sim.run()
        assert not p.is_alive


class TestSimulatorPeek:
    def test_peek_next_event_time(self):
        sim = Simulator()
        sim.timeout(7.0)
        sim.timeout(3.0)
        assert sim.peek() == 0.0 or sim.peek() <= 3.0  # triggers enqueue now
        sim.run()
        assert sim.peek() == float("inf")


class TestResourceCapacity:
    def test_two_slots_admit_two(self):
        sim = Simulator()
        res = Resource(sim, capacity=2)
        admitted = []

        def user(sim, name):
            yield res.request()
            admitted.append((sim.now, name))
            yield sim.timeout(1.0)
            res.release()

        for n in ("a", "b", "c"):
            sim.process(user(sim, n))
        sim.run()
        at_zero = [n for t, n in admitted if t == 0.0]
        assert sorted(at_zero) == ["a", "b"]
        assert ("c" in [n for t, n in admitted if t == 1.0])

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            Resource(Simulator(), capacity=0)


class TestControllerBatching:
    def test_send_lines_generator(self):
        sim = Simulator()
        ctrl = CXLController(sim)
        payloads = [CacheLinePayload(i * 64) for i in range(20)]

        def producer(sim):
            yield sim.process(ctrl.send_lines(payloads))
            return (yield ctrl.fence())

        p = sim.process(producer(sim))
        sim.run()
        assert ctrl.lines_delivered == 20
        assert p.value > 0


class TestFluidQueueEquivalence:
    """The timing engines stream transfers fluidly without modelling the
    128-entry pending queue; this test shows the queue's back-pressure
    does not change *total* completion time when the link is the
    bottleneck — it only shifts where the producer's time is spent."""

    def test_total_time_invariant_under_back_pressure(self):
        n_lines = 400
        model = CXLLinkModel.paper_default()
        t_line = model.line_transfer_time()
        production_gap = t_line / 4  # producer 4x faster than the link

        # Queued: bounded pending queue, producer blocks when full.
        sim_q = Simulator()
        ctrl = CXLController(sim_q, model, queue_depth=16)

        def queued_producer(sim):
            for i in range(n_lines):
                yield sim.timeout(production_gap)
                yield ctrl.send_line(CacheLinePayload(i * 64))
            return (yield ctrl.fence())

        pq = sim_q.process(queued_producer(sim_q))
        sim_q.run()

        # Fluid: unbounded enqueue on a bare serial link.
        sim_f = Simulator()
        link = SerialLink(
            sim_f, model.effective_bandwidth, latency=model.latency
        )

        def fluid_producer(sim):
            transfers = []
            for _ in range(n_lines):
                yield sim.timeout(production_gap)
                transfers.append(link.transmit(68))
            done = yield sim.all_of(transfers)
            return sim.now

        pf = sim_f.process(fluid_producer(sim_f))
        sim_f.run()

        assert pq.value == pytest.approx(pf.value, rel=1e-6)

    def test_back_pressure_delays_producer_not_completion(self):
        """With a tiny queue the producer finishes later (it stalls), but
        the last delivery lands at the same time."""
        model = CXLLinkModel.paper_default()
        t_line = model.line_transfer_time()

        def run(depth):
            sim = Simulator()
            ctrl = CXLController(sim, model, queue_depth=depth)
            marks = {}

            def producer(sim):
                for i in range(200):
                    yield ctrl.send_line(CacheLinePayload(i * 64))
                marks["produced"] = sim.now
                yield ctrl.fence()
                marks["done"] = sim.now

            sim.process(producer(sim))
            sim.run()
            return marks

        small = run(4)
        large = run(1024)
        assert small["produced"] > large["produced"]
        assert small["done"] == pytest.approx(large["done"], rel=1e-9)


class TestSerialLinkFreeAt:
    def test_free_at_tracks_wire(self):
        sim = Simulator()
        link = SerialLink(sim, Bandwidth(100.0))
        link.transmit(200)
        assert link.free_at == pytest.approx(2.0)

    def test_utilization_validation(self):
        sim = Simulator()
        link = SerialLink(sim, Bandwidth(100.0))
        with pytest.raises(ValueError):
            link.utilization(0)
