"""Tests for the data-parallel extension."""

import pytest

from repro.experiments.scaling import render_scaling, run_scaling
from repro.models import get_model
from repro.offload import SystemKind
from repro.offload.parallel import ClusterParams, DataParallelEngine


class TestClusterParams:
    def test_ring_time_zero_for_single_gpu(self):
        assert ClusterParams(n_gpus=1).ring_time(1 << 30) == 0.0

    def test_ring_time_scales_with_shards(self):
        c = ClusterParams(n_gpus=4)
        assert c.ring_time(2 << 20) > c.ring_time(1 << 20)

    def test_ring_bus_bytes(self):
        c = ClusterParams(n_gpus=8, collective_latency=0.0)
        t = c.ring_time(1e9)
        expected = 1e9 * 7 / c.collective_bandwidth.bytes_per_second
        assert t == pytest.approx(expected)

    @pytest.mark.parametrize("n", [2, 3, 8, 17])
    def test_ring_algebra_closed_form(self, n):
        """``ring_time`` takes the 1/n *shard* and charges shard*(n-1);
        ``ring_time_for_tensor`` takes the full tensor S and charges the
        textbook S*(n-1)/n — the same bus bytes, two entry points."""
        c = ClusterParams(n_gpus=n)
        tensor = 3e9
        shard = tensor / n
        bw = c.collective_bandwidth.bytes_per_second
        closed_form = c.collective_latency + tensor * (n - 1) / (n * bw)
        assert c.ring_time(shard) == pytest.approx(closed_form, rel=1e-12)
        assert c.ring_time_for_tensor(tensor) == pytest.approx(
            c.ring_time(shard), rel=1e-12
        )

    def test_ring_time_for_tensor_validation(self):
        with pytest.raises(ValueError):
            ClusterParams().ring_time_for_tensor(-1)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterParams(n_gpus=0)
        with pytest.raises(ValueError):
            ClusterParams().ring_time(-1)


class TestDataParallelEngine:
    @pytest.fixture(scope="class")
    def bert(self):
        return get_model("bert-large-cased")

    def test_single_gpu_close_to_base_engine(self, bert):
        """With one GPU and no collectives, the DP engine reduces to the
        single-GPU TECO result within the modelling tolerances."""
        from repro.offload import simulate_system

        dp = DataParallelEngine(
            SystemKind.TECO_REDUCTION, bert, 4, ClusterParams(n_gpus=1)
        ).simulate_step()
        single = simulate_system(SystemKind.TECO_REDUCTION, bert, 4)
        assert dp.total == pytest.approx(single.total, rel=0.1)

    def test_teco_beats_baseline_at_every_scale(self, bert):
        for n in (1, 2, 4, 8):
            base = DataParallelEngine(
                SystemKind.ZERO_OFFLOAD, bert, 32, ClusterParams(n_gpus=n)
            ).simulate_step()
            red = DataParallelEngine(
                SystemKind.TECO_REDUCTION, bert, 32, ClusterParams(n_gpus=n)
            ).simulate_step()
            assert red.total < base.total, n

    def test_step_time_shrinks_with_gpus_sublinearly(self, bert):
        t1 = DataParallelEngine(
            SystemKind.ZERO_OFFLOAD, bert, 32, ClusterParams(n_gpus=1)
        ).simulate_step().total
        t8 = DataParallelEngine(
            SystemKind.ZERO_OFFLOAD, bert, 32, ClusterParams(n_gpus=8)
        ).simulate_step().total
        assert t8 < t1  # scaling helps
        assert t8 > t1 / 8  # ...but far from linearly (constant CPU work)

    def test_sharding_reduces_per_link_volume(self, bert):
        w1 = DataParallelEngine(
            SystemKind.TECO_REDUCTION, bert, 32, ClusterParams(n_gpus=1)
        ).simulate_step().wire_bytes_per_link
        w4 = DataParallelEngine(
            SystemKind.TECO_REDUCTION, bert, 32, ClusterParams(n_gpus=4)
        ).simulate_step().wire_bytes_per_link
        assert w4 == pytest.approx(w1 / 4, rel=0.05)

    @pytest.mark.parametrize(
        "kind",
        [
            SystemKind.TECO_REDUCTION,
            SystemKind.TECO_CXL,
            SystemKind.ZERO_OFFLOAD,
        ],
    )
    def test_wire_bytes_aggregate_over_all_links(self, bert, kind):
        """Regression for the wire-byte accounting bug: ``wire_bytes``
        once reported one GPU's link.  It must now be the cluster-wide
        aggregate (n x per-link), invariant under sharding — and at
        n=1 both fields collapse to the single-GPU engine's volume."""
        from repro.offload import simulate_system

        b1 = DataParallelEngine(
            kind, bert, 32, ClusterParams(n_gpus=1)
        ).simulate_step()
        b4 = DataParallelEngine(
            kind, bert, 32, ClusterParams(n_gpus=4)
        ).simulate_step()
        assert b4.wire_bytes == pytest.approx(
            4 * b4.wire_bytes_per_link, rel=1e-12
        )
        # total cluster traffic is sharding-invariant
        assert b4.wire_bytes == pytest.approx(b1.wire_bytes, rel=1e-9)
        # n=1: aggregate == per-link == the single-GPU engine's volume
        assert b1.wire_bytes == b1.wire_bytes_per_link
        single = simulate_system(kind, bert, 32)
        assert b1.wire_bytes == pytest.approx(single.wire_bytes, rel=1e-9)
        assert single.wire_bytes == pytest.approx(
            single.wire_bytes_per_link, rel=1e-12
        )

    def test_batch_validation(self, bert):
        with pytest.raises(ValueError):
            DataParallelEngine(
                SystemKind.ZERO_OFFLOAD, bert, 3, ClusterParams(n_gpus=2)
            )
        with pytest.raises(ValueError):
            DataParallelEngine(
                SystemKind.ZERO_OFFLOAD, bert, 2, ClusterParams(n_gpus=4)
            )


class TestScalingExperiment:
    def test_speedup_band_across_scales(self):
        rows = run_scaling(gpu_counts=(1, 4, 16))
        for r in rows:
            assert 1.1 < r["speedup"] < 1.8

    def test_comm_fraction_stays_significant(self):
        rows = run_scaling(gpu_counts=(1, 16))
        for r in rows:
            assert r["baseline_comm_fraction"] > 0.10

    def test_render(self):
        assert "GPUs" in render_scaling(run_scaling(gpu_counts=(1, 2)))
