"""Golden regression test for the 2x2 cluster step.

``tests/data/golden_cluster_2x2.json`` freezes one fully-featured
:class:`~repro.offload.cluster.ClusterEngine` step — two hosts, two
tenants, in-fabric FP16 reduction, tracer on — as produced at PR 8 time
and committed.  The fixture pins the *cluster-visible contract*: per-
tenant payload/port bytes, reducer byte/wait accounting, switch/pool
queueing, per-tenant step breakdowns, and the pool-queue span census.
Any change to the fabric, reducer, or engine layers that shifts one of
these numbers by more than float noise is caught here before it silently
re-skews every multi-tenant table.

Regenerate (only after an *intentional* semantic change) with::

    PYTHONPATH=src python tests/test_golden_cluster.py --regenerate
"""

import json
import math
from pathlib import Path

import pytest

from repro.models import get_model
from repro.obs import Tracer
from repro.offload.cluster import ClusterEngine
from repro.offload.engines import SystemKind
from repro.offload.parallel import ClusterParams

FIXTURE = Path(__file__).parent / "data" / "golden_cluster_2x2.json"

#: Frozen configuration — small enough to simulate in well under a
#: second, rich enough to exercise every fabric stage.
MODEL = "bert-large-cased"
GLOBAL_BATCH = 8
N_GPUS = 2
WIRE_FORMAT = "fp16"

REL_TOL = 1e-9


def run_2x2() -> tuple[object, Tracer]:
    """One 2x2 cluster step with the frozen configuration."""
    tracer = Tracer()
    result = ClusterEngine(
        SystemKind.TECO_REDUCTION,
        get_model(MODEL),
        GLOBAL_BATCH,
        ClusterParams(n_gpus=N_GPUS),
        n_hosts=2,
        n_tenants=2,
        policy="fair",
        reduce_in_fabric=True,
        grad_wire_format=WIRE_FORMAT,
        tracer=tracer,
    ).simulate_step()
    return result, tracer


def snapshot() -> dict:
    """The cluster-visible contract as a JSON-stable dict."""
    result, tracer = run_2x2()
    pool_spans = [
        s
        for s in tracer.spans
        if s.name == "pool-queue" and s.cat == "fabric"
    ]
    return {
        "model": MODEL,
        "global_batch": GLOBAL_BATCH,
        "n_gpus": N_GPUS,
        "wire_format": WIRE_FORMAT,
        "makespan": result.makespan,
        "ports": list(result.ports),
        "tenant_bytes": list(result.tenant_bytes),
        "port_bytes": list(result.port_bytes),
        "tenant_switch_wait": list(result.tenant_switch_wait),
        "tenant_pool_wait": list(result.tenant_pool_wait),
        "tenant_reduce_in_bytes": list(result.tenant_reduce_in_bytes),
        "tenant_reduce_out_bytes": list(result.tenant_reduce_out_bytes),
        "tenant_reduce_wait": list(result.tenant_reduce_wait),
        "tenant_totals": [t.total for t in result.tenants],
        "tenant_wire_bytes": [t.wire_bytes for t in result.tenants],
        "pool_queue_spans": len(pool_spans),
        "pool_queue_seconds": sum(s.duration for s in pool_spans),
    }


def assert_matches(got, want, path=""):
    """Recursive compare: exact ints/strs, rel-1e-9 floats."""
    if isinstance(want, list):
        assert isinstance(got, list) and len(got) == len(want), path
        for i, (g, w) in enumerate(zip(got, want)):
            assert_matches(g, w, f"{path}[{i}]")
    elif isinstance(want, float):
        assert math.isclose(got, want, rel_tol=REL_TOL, abs_tol=1e-12), (
            f"{path}: {got!r} != frozen {want!r}"
        )
    else:
        assert got == want, f"{path}: {got!r} != frozen {want!r}"


class TestGoldenCluster:
    @pytest.fixture(scope="class")
    def golden(self) -> dict:
        assert FIXTURE.exists(), (
            f"missing fixture {FIXTURE}; regenerate with "
            "`PYTHONPATH=src python tests/test_golden_cluster.py "
            "--regenerate`"
        )
        return json.loads(FIXTURE.read_text())

    def test_fixture_sanity(self, golden):
        # Both tenants pushed traffic, the reducer halved it (FP16),
        # and the pool stage recorded real queueing.
        assert len(golden["tenant_bytes"]) == 2
        assert min(golden["tenant_bytes"]) > 0
        for tin, tout in zip(
            golden["tenant_reduce_in_bytes"],
            golden["tenant_reduce_out_bytes"],
        ):
            # Two ranks enter per tenant, one reduced stream leaves.
            assert math.isclose(tin, 2 * tout, rel_tol=1e-6)
        assert golden["pool_queue_spans"] > 0
        assert golden["pool_queue_seconds"] > 0
        assert golden["makespan"] > 0

    def test_cluster_step_reproduces_fixture(self, golden):
        assert_matches(snapshot(), golden)

    def test_step_is_deterministic(self):
        # Two in-process runs agree bit-for-bit — the precondition for
        # the frozen fixture being meaningful at all.
        assert snapshot() == snapshot()


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        FIXTURE.parent.mkdir(exist_ok=True)
        FIXTURE.write_text(json.dumps(snapshot(), indent=2) + "\n")
        print(f"wrote {FIXTURE}")
    else:
        sys.exit("run under pytest, or pass --regenerate")
