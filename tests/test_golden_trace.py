"""Golden-trace regression test for the sweep write-back generator.

``tests/data/golden_adam_trace.npz`` is a frozen write-back trace of a
fixed ADAM parameter sweep, produced once by the scalar (access-by-access)
engine and committed.  Both engines must keep reproducing it
byte-for-byte: the fixture pins the *cache semantics* (LRU victim choice,
write-allocate fills, flush ordering) and the *timestamp arithmetic*
(float-exact ``(store+1)/n_stores*sweep_duration``), so any change to the
memsim or generator layers that alters a single output bit is caught
before it silently shifts every downstream CXL replay number.

Regenerate (only after an *intentional* semantic change) with::

    PYTHONPATH=src python tests/test_golden_trace.py --regenerate
"""

from pathlib import Path

import numpy as np
import pytest

from repro.memsim import CacheHierarchy, SetAssociativeCache, WritebackTrace
from repro.trace import simulate_sweep_writebacks

FIXTURE = Path(__file__).parent / "data" / "golden_adam_trace.npz"

#: Frozen sweep configuration — Table II shapes scaled down so the scalar
#: engine runs in well under a second while still spilling the LLC.
PARAM_BYTES = 64 * 1337  # deliberately not a line-count power of two
SWEEP_DURATION = 0.125
BASE_ADDRESS = 1 << 20


def golden_hierarchy() -> CacheHierarchy:
    """The exact hierarchy the fixture was generated with."""
    return CacheHierarchy(
        [
            SetAssociativeCache(8 * 2**10, 64, 8, name="L1D"),
            SetAssociativeCache(64 * 2**10, 64, 16, name="L2"),
        ]
    )


def generate(engine: str) -> WritebackTrace:
    return simulate_sweep_writebacks(
        PARAM_BYTES,
        SWEEP_DURATION,
        golden_hierarchy(),
        base_address=BASE_ADDRESS,
        engine=engine,
    )


class TestGoldenTrace:
    @pytest.fixture(scope="class")
    def golden(self) -> WritebackTrace:
        assert FIXTURE.exists(), (
            f"missing fixture {FIXTURE}; regenerate with "
            "`PYTHONPATH=src python tests/test_golden_trace.py --regenerate`"
        )
        return WritebackTrace.load(FIXTURE)

    def test_fixture_sanity(self, golden):
        # Every line of the arena writes back exactly once (linear sweep,
        # flush at the end), all inside the arena, all within the sweep.
        assert len(golden) == PARAM_BYTES // 64
        assert golden.unique_lines == len(golden)
        assert golden.addresses.min() >= BASE_ADDRESS
        assert golden.addresses.max() < BASE_ADDRESS + PARAM_BYTES
        assert golden.times.max() == SWEEP_DURATION

    @pytest.mark.parametrize("engine", ["scalar", "block"])
    def test_engine_reproduces_fixture_exactly(self, golden, engine):
        trace = generate(engine)
        assert trace.times.tobytes() == golden.times.tobytes()
        assert trace.addresses.tobytes() == golden.addresses.tobytes()


if __name__ == "__main__":
    import sys

    if "--regenerate" in sys.argv:
        FIXTURE.parent.mkdir(exist_ok=True)
        generate("scalar").save(FIXTURE)
        print(f"wrote {FIXTURE}")
    else:
        sys.exit("run under pytest, or pass --regenerate")
