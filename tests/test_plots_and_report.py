"""Tests for ASCII plotting, the seq-length ablation, and report output."""

import json

import pytest

from repro.experiments.ablation_seqlen import render_seqlen, run_seqlen_ablation
from repro.experiments.report import generate_report
from repro.utils.plots import ascii_bar_chart, ascii_line_chart


class TestLineChart:
    def test_basic_render(self):
        out = ascii_line_chart({"loss": [3.0, 2.0, 1.0, 0.5]}, title="t")
        assert out.splitlines()[0] == "t"
        assert "*" in out
        assert "loss" in out

    def test_two_series_distinct_glyphs(self):
        out = ascii_line_chart(
            {"a": [1, 2, 3], "b": [3, 2, 1]}, width=16, height=5
        )
        assert "*" in out and "o" in out

    def test_constant_series(self):
        out = ascii_line_chart({"flat": [1.0, 1.0, 1.0]})
        assert "flat" in out

    def test_bounds_in_axis_labels(self):
        out = ascii_line_chart({"x": [0.0, 10.0]}, width=8, height=3)
        assert "10" in out and "0" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_line_chart({})
        with pytest.raises(ValueError):
            ascii_line_chart({"a": [1]}, width=2)
        with pytest.raises(ValueError):
            ascii_line_chart({"a": []})


class TestBarChart:
    def test_basic(self):
        out = ascii_bar_chart(["gpt2", "bert"], [1.8, 1.6], unit="x")
        lines = out.splitlines()
        assert lines[0].startswith("gpt2")
        assert "#" in lines[0]
        assert "1.8x" in lines[0]

    def test_proportionality(self):
        out = ascii_bar_chart(["a", "b"], [4.0, 2.0], width=40)
        a_bar = out.splitlines()[0].count("#")
        b_bar = out.splitlines()[1].count("#")
        assert a_bar == pytest.approx(2 * b_bar, abs=1)

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            ascii_bar_chart([], [])
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [0.0])


class TestSeqlenAblation:
    def test_speedup_band_across_lengths(self):
        """Conclusions hold over a wide seq-length range: TECO always wins
        and the speedup stays within the paper's band."""
        rows = run_seqlen_ablation()
        for r in rows:
            assert 1.05 < r["speedup"] < 2.1

    def test_longer_sequences_more_compute_bound(self):
        rows = run_seqlen_ablation()
        fracs = [r["comm_fraction"] for r in rows]
        assert fracs == sorted(fracs, reverse=True)

    def test_render(self):
        assert "seq len" in render_seqlen(
            run_seqlen_ablation(seq_lens=(64, 128))
        )


class TestReportGenerator:
    def test_writes_markdown_and_json(self, tmp_path):
        rendered = generate_report(
            tmp_path, experiments=["table1", "overheads"]
        )
        assert set(rendered) == {"table1", "overheads"}
        md = (tmp_path / "report.md").read_text()
        assert "Table I" in md and "DRAM" in md
        data = json.loads((tmp_path / "results.json").read_text())
        assert "table1" in data["experiments"]
        assert data["experiments"]["table1"]["seconds"] >= 0

    def test_unknown_experiment_rejected(self, tmp_path):
        with pytest.raises(KeyError):
            generate_report(tmp_path, experiments=["nope"])

    def test_cli_report_command(self, tmp_path, capsys):
        from repro.cli import main

        # patch EXPERIMENTS subset for speed via direct generate call is
        # covered above; here just exercise the argument path with a fast
        # single experiment through 'table1'.
        assert main(["table1"]) == 0
        assert "Table I" in capsys.readouterr().out
