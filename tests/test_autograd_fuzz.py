"""Property-based autograd fuzzing: random expression graphs vs numerical
gradients.

Hypothesis composes random computation graphs from the op vocabulary the
models actually use; every graph's analytic gradient must match central
finite differences.  This catches interaction bugs (broadcasting +
reductions + reuse) that per-op tests cannot.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import Tensor, functional as F, no_grad

UNARY_OPS = ["relu", "gelu", "tanh", "sigmoid", "neg", "square"]
BINARY_OPS = ["add", "mul", "sub"]
REDUCE_OPS = ["sum", "mean"]


def apply_unary(name, t):
    """Apply one unary op by name."""
    if name == "neg":
        return -t
    if name == "square":
        return t * t
    return getattr(F, name)(t)


def apply_binary(name, a, b):
    """Apply one binary op by name."""
    if name == "add":
        return a + b
    if name == "mul":
        return a * b
    return a - b


@st.composite
def expression_programs(draw):
    """A random straight-line program over a (4, 3) input tensor."""
    n_steps = draw(st.integers(1, 6))
    steps = []
    n_values = 1  # value 0 is the input
    for _ in range(n_steps):
        kind = draw(st.sampled_from(["unary", "binary"]))
        if kind == "unary":
            steps.append(
                ("unary", draw(st.sampled_from(UNARY_OPS)),
                 draw(st.integers(0, n_values - 1)))
            )
        else:
            steps.append(
                ("binary", draw(st.sampled_from(BINARY_OPS)),
                 draw(st.integers(0, n_values - 1)),
                 draw(st.integers(0, n_values - 1)))
            )
        n_values += 1
    reduce_op = draw(st.sampled_from(REDUCE_OPS))
    return steps, reduce_op


def evaluate(program, x: Tensor):
    """Run a program on tensor x, returning the scalar loss tensor."""
    steps, reduce_op = program
    values = [x]
    for step in steps:
        if step[0] == "unary":
            _, name, src = step
            values.append(apply_unary(name, values[src]))
        else:
            _, name, a, b = step
            values.append(apply_binary(name, values[a], values[b]))
    return getattr(values[-1], reduce_op)()


class TestAutogradFuzz:
    @given(expression_programs(), st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_random_graph_gradients_match_numerical(self, program, seed):
        rng = np.random.default_rng(seed)
        x0 = (rng.standard_normal((4, 3)) * 0.8).astype(np.float32)

        t = Tensor(x0.copy(), requires_grad=True)
        loss = evaluate(program, t)
        loss.backward()
        analytic = t.grad.astype(np.float64)

        def f(arr):
            with no_grad():
                return evaluate(program, Tensor(arr.astype(np.float32))).item()

        def central_diff(eps):
            numeric = np.zeros_like(x0, dtype=np.float64)
            flat = x0.astype(np.float64)
            for i in range(flat.size):
                orig = flat.reshape(-1)[i]
                flat.reshape(-1)[i] = orig + eps
                hi = f(flat)
                flat.reshape(-1)[i] = orig - eps
                lo = f(flat)
                flat.reshape(-1)[i] = orig
                numeric.reshape(-1)[i] = (hi - lo) / (2 * eps)
            return numeric

        eps = 1e-3
        numeric = central_diff(eps)
        close = np.isclose(analytic, numeric, rtol=0.05, atol=5e-2)
        if not close.all():
            # A mismatch can be a genuine gradient bug, or one of two
            # finite-difference artifacts:
            #  * the input sits within eps of a ReLU/GELU kink, so the
            #    secant straddles the non-smooth point — step-size
            #    DEPENDENT, so a second incommensurate eps disagrees
            #    with the first and marks the entry unstable;
            #  * the fp32 forward cannot resolve the perturbation: when
            #    the expected secant |analytic|*2*eps is a few ulps of
            #    the loss magnitude, hi-lo cancels to rounding noise
            #    (often exactly 0) at EVERY step size, so stability
            #    alone cannot excuse it — a resolvability floor does.
            # A true gradient bug at a smooth, resolvable entry survives
            # both filters and still fails.
            numeric2 = central_diff(3.1e-3)
            stable = np.isclose(numeric, numeric2, rtol=0.05, atol=5e-2)
            base = max(abs(f(x0.astype(np.float64))), 1.0)
            resolvable = (
                np.abs(analytic) * 2 * eps
                > 64 * np.finfo(np.float32).eps * base
            )
            bad = ~close & stable & resolvable
            assert not bad.any(), (
                f"analytic/numeric mismatch at stable, resolvable "
                f"entries:\nanalytic={analytic[bad]}\n"
                f"numeric={numeric[bad]}"
            )
        else:
            np.testing.assert_allclose(
                analytic, numeric, rtol=0.05, atol=5e-2
            )

    @given(expression_programs(), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_backward_is_deterministic(self, program, seed):
        rng = np.random.default_rng(seed)
        x0 = (rng.standard_normal((4, 3)) * 0.5).astype(np.float32)
        grads = []
        for _ in range(2):
            t = Tensor(x0.copy(), requires_grad=True)
            evaluate(program, t).backward()
            grads.append(t.grad.copy())
        np.testing.assert_array_equal(grads[0], grads[1])

    @given(expression_programs())
    @settings(max_examples=30, deadline=None)
    def test_no_grad_leaves_no_graph(self, program):
        x = Tensor(np.ones((4, 3), dtype=np.float32), requires_grad=True)
        with no_grad():
            out = evaluate(program, x)
        assert not out.requires_grad
