"""Property-based autograd fuzzing: random expression graphs vs numerical
gradients.

Hypothesis composes random computation graphs from the op vocabulary the
models actually use; every graph's analytic gradient must match central
finite differences.  This catches interaction bugs (broadcasting +
reductions + reuse) that per-op tests cannot.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor import Tensor, functional as F, no_grad

UNARY_OPS = ["relu", "gelu", "tanh", "sigmoid", "neg", "square"]
BINARY_OPS = ["add", "mul", "sub"]
REDUCE_OPS = ["sum", "mean"]


def apply_unary(name, t):
    """Apply one unary op by name."""
    if name == "neg":
        return -t
    if name == "square":
        return t * t
    return getattr(F, name)(t)


def apply_binary(name, a, b):
    """Apply one binary op by name."""
    if name == "add":
        return a + b
    if name == "mul":
        return a * b
    return a - b


@st.composite
def expression_programs(draw):
    """A random straight-line program over a (4, 3) input tensor."""
    n_steps = draw(st.integers(1, 6))
    steps = []
    n_values = 1  # value 0 is the input
    for _ in range(n_steps):
        kind = draw(st.sampled_from(["unary", "binary"]))
        if kind == "unary":
            steps.append(
                ("unary", draw(st.sampled_from(UNARY_OPS)),
                 draw(st.integers(0, n_values - 1)))
            )
        else:
            steps.append(
                ("binary", draw(st.sampled_from(BINARY_OPS)),
                 draw(st.integers(0, n_values - 1)),
                 draw(st.integers(0, n_values - 1)))
            )
        n_values += 1
    reduce_op = draw(st.sampled_from(REDUCE_OPS))
    return steps, reduce_op


def evaluate(program, x: Tensor):
    """Run a program on tensor x, returning the scalar loss tensor."""
    steps, reduce_op = program
    values = [x]
    for step in steps:
        if step[0] == "unary":
            _, name, src = step
            values.append(apply_unary(name, values[src]))
        else:
            _, name, a, b = step
            values.append(apply_binary(name, values[a], values[b]))
    return getattr(values[-1], reduce_op)()


class TestAutogradFuzz:
    @given(expression_programs(), st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_random_graph_gradients_match_numerical(self, program, seed):
        rng = np.random.default_rng(seed)
        x0 = (rng.standard_normal((4, 3)) * 0.8).astype(np.float32)

        t = Tensor(x0.copy(), requires_grad=True)
        loss = evaluate(program, t)
        loss.backward()
        analytic = t.grad.astype(np.float64)

        def f(arr):
            with no_grad():
                return evaluate(program, Tensor(arr.astype(np.float32))).item()

        eps = 1e-3
        numeric = np.zeros_like(x0, dtype=np.float64)
        flat = x0.astype(np.float64)
        for i in range(flat.size):
            orig = flat.reshape(-1)[i]
            flat.reshape(-1)[i] = orig + eps
            hi = f(flat)
            flat.reshape(-1)[i] = orig - eps
            lo = f(flat)
            flat.reshape(-1)[i] = orig
            numeric.reshape(-1)[i] = (hi - lo) / (2 * eps)

        # ReLU kinks make exact matching impossible at the kink; compare
        # with a tolerance that respects fp32 forward precision.
        np.testing.assert_allclose(analytic, numeric, rtol=0.05, atol=5e-2)

    @given(expression_programs(), st.integers(0, 10_000))
    @settings(max_examples=40, deadline=None)
    def test_backward_is_deterministic(self, program, seed):
        rng = np.random.default_rng(seed)
        x0 = (rng.standard_normal((4, 3)) * 0.5).astype(np.float32)
        grads = []
        for _ in range(2):
            t = Tensor(x0.copy(), requires_grad=True)
            evaluate(program, t).backward()
            grads.append(t.grad.copy())
        np.testing.assert_array_equal(grads[0], grads[1])

    @given(expression_programs())
    @settings(max_examples=30, deadline=None)
    def test_no_grad_leaves_no_graph(self, program):
        x = Tensor(np.ones((4, 3), dtype=np.float32), requires_grad=True)
        with no_grad():
            out = evaluate(program, x)
        assert not out.requires_grad
