"""End-to-end determinism: every experiment is reproducible bit-for-bit.

The whole reproduction is seeded; a reviewer rerunning any driver must
get identical rows.  Timing drivers are pure functions of their inputs;
functional drivers thread explicit RNGs.
"""

import numpy as np
import pytest

from repro.experiments import fig2, fig10, fig13, table1, table8
from repro.experiments.fig11_table4 import run_fig11_table4
from repro.experiments.lammps import run_lammps
from repro.mdsim import MDOffloadSimulation
from repro.offload import OffloadTrainer
from repro.tensor.transformer import TinyTransformerLM


class TestTimingDeterminism:
    def test_table1_identical_runs(self):
        assert table1.run_table1() == table1.run_table1()

    def test_fig11_identical_runs(self):
        assert run_fig11_table4() == run_fig11_table4()


class TestFunctionalDeterminism:
    def test_fig2_reproducible(self):
        a = fig2.run_fig2(n_steps=10, seed=3)
        b = fig2.run_fig2(n_steps=10, seed=3)
        assert a.param_means == b.param_means
        assert a.grad_steps == b.grad_steps

    def test_fig2_seed_sensitivity(self):
        a = fig2.run_fig2(n_steps=10, seed=3)
        b = fig2.run_fig2(n_steps=10, seed=4)
        assert a.param_means != b.param_means

    @pytest.mark.slow
    def test_fig10_reproducible(self):
        a = fig10.run_fig10(n_steps=20, act_aft_steps=5, seed=2)
        b = fig10.run_fig10(n_steps=20, act_aft_steps=5, seed=2)
        assert a.baseline_curve == b.baseline_curve
        assert a.teco_curve == b.teco_curve

    @pytest.mark.slow
    def test_fig13_reproducible(self):
        a = fig13.run_fig13(sweep=(0, 20), total_steps=20, seed=1)
        b = fig13.run_fig13(sweep=(0, 20), total_steps=20, seed=1)
        assert a == b

    def test_table8_ratio_reproducible(self):
        assert table8.measured_parameter_ratio(
            seed=0
        ) == table8.measured_parameter_ratio(seed=0)

    def test_lammps_reproducible(self):
        a = run_lammps(n_side=3, n_steps=5, seed=2)
        b = run_lammps(n_side=3, n_steps=5, seed=2)
        assert a["volume_reduction"] == b["volume_reduction"]
        assert a["low_byte_fraction"] == b["low_byte_fraction"]


class TestTrainerDeterminism:
    def test_identical_seeds_identical_training(self):
        def run():
            model = TinyTransformerLM(
                vocab=16, dim=16, n_heads=2, n_layers=1, max_seq=12,
                rng=np.random.default_rng(5),
            )
            trainer = OffloadTrainer(model, lr=2e-3)
            rng = np.random.default_rng(6)
            batches = [(rng.integers(0, 16, (4, 10)),) for _ in range(8)]
            trainer.train(batches)
            return trainer.arena.snapshot()

        np.testing.assert_array_equal(run(), run())

    def test_md_trajectories_reproducible(self):
        a = MDOffloadSimulation(n_side=3, seed=9)
        b = MDOffloadSimulation(n_side=3, seed=9)
        a.run(5)
        b.run(5)
        np.testing.assert_array_equal(a.positions, b.positions)
