"""Tests for the multi-host CXL fabric and the ClusterEngine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.interconnect import (
    CacheLinePayload,
    CXLController,
    CXLFabric,
    FabricParams,
    PartitionPolicy,
)
from repro.models import get_model
from repro.obs import Metrics, Tracer, validate_chrome_trace
from repro.offload import (
    ClusterEngine,
    DataParallelEngine,
    SystemKind,
)
from repro.offload.parallel import ClusterParams
from repro.sim import Simulator
from repro.utils.units import GB, Bandwidth


def _params(**kw):
    defaults = dict(
        n_ports=2,
        n_tenants=2,
        port_bandwidth=Bandwidth(10 * GB),
        port_latency=0.0,
        switch_latency=0.0,
        pool_latency=0.0,
    )
    defaults.update(kw)
    return FabricParams(**defaults)


class TestFabricParams:
    def test_defaults_resolve(self):
        p = FabricParams(n_ports=4)
        assert p.resolved_switch_bandwidth.bytes_per_second == pytest.approx(
            4 * p.port_bandwidth.bytes_per_second
        )
        assert p.resolved_pool_bandwidth.bytes_per_second == pytest.approx(
            2 * p.port_bandwidth.bytes_per_second
        )

    def test_policy_parse_from_string(self):
        assert FabricParams(policy="shared").policy is PartitionPolicy.SHARED
        assert FabricParams(policy="fair").policy is PartitionPolicy.FAIR_SHARE
        with pytest.raises(ValueError):
            FabricParams(policy="bogus")

    def test_weighted_requires_weights(self):
        with pytest.raises(ValueError):
            FabricParams(n_tenants=2, policy="weighted")
        with pytest.raises(ValueError):
            FabricParams(
                n_tenants=2, policy="weighted", tenant_weights=(1.0,)
            )
        p = FabricParams(
            n_tenants=2, policy="weighted", tenant_weights=(1.0, 3.0)
        )
        assert p.tenant_share(0) == pytest.approx(0.25)
        assert p.tenant_share(1) == pytest.approx(0.75)

    def test_fair_share_splits_evenly(self):
        p = FabricParams(n_tenants=4, policy="fair")
        assert p.tenant_share(2) == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            FabricParams(n_ports=0)
        with pytest.raises(ValueError):
            FabricParams(n_tenants=0)
        with pytest.raises(ValueError):
            FabricParams(cells_per_transfer=0)


class TestCXLFabricTransfers:
    def test_single_cell_timing_through_all_stages(self):
        """A small (single-cell) transfer pays port + switch + pool in
        sequence: store-and-forward through three serial stages."""
        bw = 1 * GB
        p = _params(
            n_ports=1,
            n_tenants=1,
            port_bandwidth=Bandwidth(bw),
            switch_bandwidth=Bandwidth(2 * bw),
            pool_bandwidth=Bandwidth(4 * bw),
        )
        sim = Simulator()
        fabric = CXLFabric(sim, p)
        port = fabric.port(0, tenant=0)
        n_bytes = 1024  # below MIN_CELL_BYTES -> one cell
        done = {}

        def go(sim):
            yield port.transmit(n_bytes)
            done["t"] = sim.now

        sim.process(go(sim))
        sim.run()
        expected = n_bytes / bw + n_bytes / (2 * bw) + n_bytes / (4 * bw)
        assert done["t"] == pytest.approx(expected, rel=1e-9)

    def test_large_transfer_pipelines_in_cells(self):
        """A multi-cell transfer approaches the bottleneck-stage fluid
        limit instead of paying every stage serially."""
        bw = 1 * GB
        p = _params(
            n_ports=1,
            n_tenants=1,
            port_bandwidth=Bandwidth(bw),
            switch_bandwidth=Bandwidth(2 * bw),
            pool_bandwidth=Bandwidth(4 * bw),
        )
        sim = Simulator()
        fabric = CXLFabric(sim, p)
        port = fabric.port(0)
        n_bytes = 64 * 2**20
        done = {}

        def go(sim):
            yield port.transmit(n_bytes)
            done["t"] = sim.now

        sim.process(go(sim))
        sim.run()
        fluid = n_bytes / bw  # port is the bottleneck stage
        serial = n_bytes / bw + n_bytes / (2 * bw) + n_bytes / (4 * bw)
        assert done["t"] >= fluid
        assert done["t"] < serial * 0.75  # pipelining beats store-and-forward
        # within ~(stages-1)/cells of the fluid limit
        assert done["t"] == pytest.approx(fluid, rel=3 / p.cells_per_transfer)

    def test_two_tenants_one_port_serialize(self):
        """Tenants co-located on a port share its wire FCFS."""
        p = _params(n_ports=1, n_tenants=2)
        sim = Simulator()
        fabric = CXLFabric(sim, p)
        a, b = fabric.port(0, tenant=0), fabric.port(0, tenant=1)
        n_bytes = 32 * 2**20
        ends = {}

        def go(sim, link, key):
            yield link.transmit(n_bytes)
            ends[key] = sim.now

        sim.process(go(sim, a, "a"))
        sim.process(go(sim, b, "b"))
        sim.run()
        alone = n_bytes / p.port_bandwidth.bytes_per_second
        # the later finisher saw a (roughly) halved port
        assert max(ends.values()) >= 2 * alone * 0.95

    def test_shared_pool_contention_slows_tenants(self):
        """With a SHARED pool at 1x port bandwidth, two tenants on
        separate ports contend at the pool stage."""
        bw = 10 * GB
        contended = _params(
            policy="shared", pool_bandwidth=Bandwidth(bw)
        )
        n_bytes = 32 * 2**20

        def run(params, n_tenants):
            sim = Simulator()
            fabric = CXLFabric(sim, params)
            ends = {}

            def go(sim, link, key):
                yield link.transmit(n_bytes)
                ends[key] = sim.now

            for t in range(n_tenants):
                sim.process(go(sim, fabric.port(t % params.n_ports, t), t))
            sim.run()
            return max(ends.values()), fabric

        t1, _ = run(contended, 1)
        t2, fabric = run(contended, 2)
        assert t2 > t1 * 1.5  # pool at 1x port is the shared bottleneck
        assert fabric.stats.pool_wait > 0.0

    def test_fair_partition_isolates_but_caps(self):
        """FAIR_SHARE guarantees 1/M of the pool regardless of the other
        tenant's load — and caps a lone heavy tenant at its share."""
        bw = 10 * GB
        p = _params(policy="fair", pool_bandwidth=Bandwidth(bw))
        sim = Simulator()
        fabric = CXLFabric(sim, p)
        port = fabric.port(0, tenant=0)
        n_bytes = 32 * 2**20
        ends = {}

        def go(sim):
            yield port.transmit(n_bytes)
            ends["t"] = sim.now

        sim.process(go(sim))
        sim.run()
        # tenant 0 alone still only gets pool/2 = 5 GB/s: pool-bound
        assert ends["t"] == pytest.approx(
            n_bytes / (bw / 2), rel=0.15
        )

    def test_weighted_partition_orders_tenants(self):
        """A heavier QoS weight finishes the same load strictly sooner."""
        bw = 10 * GB
        p = _params(
            policy="weighted",
            tenant_weights=(1.0, 3.0),
            pool_bandwidth=Bandwidth(bw),
        )
        sim = Simulator()
        fabric = CXLFabric(sim, p)
        light, heavy = fabric.port(0, 0), fabric.port(1, 1)
        n_bytes = 32 * 2**20
        ends = {}

        def go(sim, link, key):
            yield link.transmit(n_bytes)
            ends[key] = sim.now

        sim.process(go(sim, light, "light"))
        sim.process(go(sim, heavy, "heavy"))
        sim.run()
        assert ends["heavy"] < ends["light"]

    def test_stats_account_per_port_and_per_tenant(self):
        p = _params(n_ports=2, n_tenants=3)
        sim = Simulator()
        fabric = CXLFabric(sim, p)
        links = [fabric.port(t % 2, t) for t in range(3)]

        def go(sim, link, n):
            yield link.transmit(n)

        for i, link in enumerate(links):
            sim.process(go(sim, link, 1000 * (i + 1)))
        sim.run()
        stats = fabric.stats
        assert stats.tenant_bytes == {0: 1000.0, 1: 2000.0, 2: 3000.0}
        # tenants 0 and 2 share port 0
        assert stats.port_bytes == {0: 4000.0, 1: 2000.0}
        assert stats.total_bytes == 6000.0
        snap = stats.snapshot()
        assert snap["total_bytes"] == 6000.0
        assert snap["tenant_bytes"]["2"] == 3000.0

    def test_port_and_tenant_range_validation(self):
        sim = Simulator()
        fabric = CXLFabric(sim, _params(n_ports=2, n_tenants=2))
        with pytest.raises(ValueError):
            fabric.port(2, 0)
        with pytest.raises(ValueError):
            fabric.port(0, 2)

    def test_contention_emits_fabric_spans_and_tenant_accounting(self):
        """Chrome traces carry switch/pool queueing spans tagged with the
        tenant, and metrics carry per-tenant byte counters."""
        tracer, metrics = Tracer(), Metrics()
        sim = Simulator(tracer=tracer, metrics=metrics)
        p = _params(policy="shared", pool_bandwidth=Bandwidth(10 * GB))
        fabric = CXLFabric(sim, p)
        n_bytes = 32 * 2**20

        def go(sim, link):
            yield link.transmit(n_bytes)

        for t in range(2):
            sim.process(go(sim, fabric.port(t, t)))
        sim.run()
        cats = {s.cat for s in tracer.spans}
        assert "fabric" in cats and "link" in cats
        fabric_spans = [s for s in tracer.spans if s.cat == "fabric"]
        assert fabric_spans, "contended run recorded no queueing spans"
        assert {s.args["tenant"] for s in fabric_spans} <= {0, 1}
        trace = tracer.chrome_trace(metrics=metrics)
        assert validate_chrome_trace(trace) == []
        counters = metrics.counters()
        assert counters["fabric.tenant0.bytes"] == n_bytes
        assert counters["fabric.tenant1.bytes"] == n_bytes
        assert counters["fabric.port0.bytes"] == n_bytes


class TestClusterEngine:
    @pytest.fixture(scope="class")
    def bert(self):
        return get_model("bert-large-cased")

    @pytest.mark.parametrize(
        "kind",
        [
            SystemKind.TECO_REDUCTION,
            SystemKind.TECO_CXL,
            SystemKind.ZERO_OFFLOAD,
        ],
    )
    def test_single_tenant_matches_data_parallel_engine(self, bert, kind):
        """Acceptance: n_hosts=1, tenants=1 over the fabric reproduces
        the DataParallelEngine breakdown within tolerance."""
        dp = DataParallelEngine(
            kind, bert, 4, ClusterParams(n_gpus=1)
        ).simulate_step()
        cl = ClusterEngine(
            kind, bert, 4, ClusterParams(n_gpus=1), n_hosts=1, n_tenants=1
        ).simulate_step()
        t = cl.tenants[0]
        assert t.total == pytest.approx(dp.total, rel=0.03)
        assert t.forward == pytest.approx(dp.forward, rel=1e-9)
        assert t.backward == pytest.approx(dp.backward, rel=1e-9)
        assert t.optimizer == pytest.approx(dp.optimizer, rel=0.05)
        assert t.communication_exposed == pytest.approx(
            dp.communication_exposed, rel=0.25, abs=5e-3
        )
        assert t.wire_bytes == pytest.approx(dp.wire_bytes, rel=1e-9)
        assert t.wire_bytes_per_link == pytest.approx(
            dp.wire_bytes_per_link, rel=1e-9
        )

    def test_multi_gpu_tenant_matches_data_parallel_engine(self, bert):
        """The intra-job sharding (n_gpus=4) carries over unchanged."""
        dp = DataParallelEngine(
            SystemKind.TECO_REDUCTION, bert, 16, ClusterParams(n_gpus=4)
        ).simulate_step()
        cl = ClusterEngine(
            SystemKind.TECO_REDUCTION,
            bert,
            16,
            ClusterParams(n_gpus=4),
            n_hosts=1,
            n_tenants=1,
        ).simulate_step()
        assert cl.tenants[0].total == pytest.approx(dp.total, rel=0.03)
        assert cl.tenants[0].wire_bytes == pytest.approx(
            dp.wire_bytes, rel=1e-9
        )

    @pytest.mark.slow
    def test_pool_contention_slowdown_is_monotone(self, bert):
        """Acceptance: a tenants sweep shows monotone pool-contention
        slowdown (per-tenant mean step never improves with more load)."""
        for policy in ("fair", "shared"):
            means = []
            for m in (1, 2, 4, 8):
                weights = None
                cl = ClusterEngine(
                    SystemKind.TECO_REDUCTION,
                    bert,
                    4,
                    ClusterParams(n_gpus=1),
                    n_hosts=2,
                    n_tenants=m,
                    policy=policy,
                    tenant_weights=weights,
                ).simulate_step()
                means.append(cl.mean_step)
            for lo, hi in zip(means, means[1:]):
                assert hi >= lo * (1 - 1e-9), (policy, means)
            assert means[-1] > means[0] * 1.5, (policy, means)

    def test_contention_wait_grows_with_tenants(self, bert):
        waits = []
        for m in (2, 4, 8):
            cl = ClusterEngine(
                SystemKind.TECO_REDUCTION,
                bert,
                4,
                ClusterParams(n_gpus=1),
                n_hosts=2,
                n_tenants=m,
            ).simulate_step()
            waits.append(cl.contention_wait)
        assert waits == sorted(waits)
        assert waits[-1] > 0.0

    def test_weighted_policy_prefers_heavy_tenant(self, bert):
        cl = ClusterEngine(
            SystemKind.TECO_REDUCTION,
            bert,
            4,
            ClusterParams(n_gpus=1),
            n_hosts=4,
            n_tenants=4,
            policy="weighted",
            tenant_weights=(1.0, 1.0, 1.0, 8.0),
        ).simulate_step()
        steps = [t.total for t in cl.tenants]
        assert steps[3] == min(steps)

    def test_tenant_bytes_balanced_and_ports_round_robin(self, bert):
        cl = ClusterEngine(
            SystemKind.TECO_REDUCTION,
            bert,
            4,
            ClusterParams(n_gpus=1),
            n_hosts=2,
            n_tenants=4,
        ).simulate_step()
        assert cl.ports == (0, 1, 0, 1)
        assert len(set(round(b) for b in cl.tenant_bytes)) == 1  # equal jobs
        assert sum(cl.port_bytes) == pytest.approx(cl.fabric_bytes)

    def test_cluster_trace_accounts_per_tenant_traffic(self, bert):
        """Acceptance: the Chrome trace of a contended cluster step
        carries per-tenant traffic (fabric queueing spans tagged with
        tenants, per-tenant byte counters, per-tenant step spans)."""
        tracer, metrics = Tracer(), Metrics()
        cl = ClusterEngine(
            SystemKind.TECO_REDUCTION,
            bert,
            4,
            ClusterParams(n_gpus=1),
            n_hosts=2,
            n_tenants=4,
            tracer=tracer,
            metrics=metrics,
        )
        cl.simulate_step()
        trace = tracer.chrome_trace(metrics=metrics)
        assert validate_chrome_trace(trace) == []
        counters = metrics.counters()
        for t in range(4):
            assert counters[f"fabric.tenant{t}.bytes"] > 0
        systems = {
            s.args.get("system")
            for s in tracer.spans
            if s.cat == "trainer" and s.name == "step"
        }
        assert len(systems) == 4  # one step span per tenant
        queue_spans = [s for s in tracer.spans if s.cat == "fabric"]
        assert queue_spans and all("tenant" in s.args for s in queue_spans)

    def test_batch_validation(self, bert):
        with pytest.raises(ValueError):
            ClusterEngine(
                SystemKind.TECO_REDUCTION, bert, 3, ClusterParams(n_gpus=2)
            )


class TestFencePropertyOnSharedFabricPort:
    """Satellite: CXLFENCE correctness under fabric contention."""

    @given(
        producer_lines=st.lists(
            st.integers(min_value=1, max_value=12), min_size=1, max_size=4
        ),
        rival_lines=st.integers(min_value=0, max_value=30),
        per_line_delay=st.sampled_from([0.0, 1e-9]),
    )
    @settings(max_examples=40, deadline=None)
    def test_fence_fires_only_after_all_enqueued_lines_deliver(
        self, producer_lines, rival_lines, per_line_delay
    ):
        """Multiple concurrent producers share one CXLController attached
        to a fabric port, while a rival tenant hammers the shared switch
        and pool from another port: the fence must fire exactly at the
        last covered delivery — never early under contention."""
        params = FabricParams(
            n_ports=2,
            n_tenants=2,
            port_bandwidth=Bandwidth(1 * GB),
            policy="shared",
            pool_bandwidth=Bandwidth(1 * GB),  # pool == port: contended
        )
        sim = Simulator()
        fabric = CXLFabric(sim, params)
        ctrl = CXLController(
            sim,
            per_line_delay=per_line_delay,
            link=fabric.port(0, tenant=0),
            queue_depth=8,
        )
        rival = fabric.port(1, tenant=1)
        total = sum(producer_lines)
        produced = []
        fence_result = {}

        def producer(sim, k, n):
            for i in range(n):
                yield ctrl.send_line(CacheLinePayload((k * 64 + i) * 64))
                produced.append(sim.now)

        def rival_traffic(sim):
            for _ in range(rival_lines):
                yield rival.transmit(4096)

        def fencer(sim, workers):
            yield sim.all_of(workers)  # all lines accepted
            fence_result["pre_outstanding"] = ctrl.outstanding
            t = yield ctrl.fence()
            fence_result["fired"] = t
            fence_result["outstanding"] = ctrl.outstanding
            fence_result["delivered"] = ctrl.lines_delivered

        workers = [
            sim.process(producer(sim, k, n))
            for k, n in enumerate(producer_lines)
        ]
        sim.process(rival_traffic(sim))
        sim.process(fencer(sim, workers))
        sim.run()

        assert ctrl.lines_delivered == total
        # lines were still in flight when the fence was requested...
        assert fence_result["pre_outstanding"] > 0
        # ...yet the fence saw every previously enqueued line delivered...
        assert fence_result["outstanding"] == 0
        assert fence_result["delivered"] == total
        # ...and fired exactly at the last covered delivery, not later
        assert fence_result["fired"] == pytest.approx(
            ctrl.last_delivery_time, abs=1e-15
        )
        # never early: deliveries cross port AND pool serially at 1 GB/s,
        # so the fence cannot beat the uncontended pipeline lower bound
        wire_bytes = ctrl.wire_bytes_sent
        lower_bound = wire_bytes / (1 * GB)
        assert fence_result["fired"] >= lower_bound * (1 - 1e-9)
