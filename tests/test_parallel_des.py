"""Sequential/parallel equivalence of the sharded DES core.

The contract of :mod:`repro.sim.parallel`: for shards that do not
interact, the conservative-lookahead windowed run delivers every event
at exactly the time a single co-scheduled sequential
:class:`~repro.sim.engine.Simulator` would — for ANY shard order, any
worker count and any lookahead.  That property is what lets experiment
result hashes stay invariant under ``--shards``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator
from repro.sim.parallel import (
    ParallelResult,
    SimShard,
    TaskShard,
    default_lookahead,
    run_sharded_tasks,
    run_shards,
)

# --- workloads (module-level: shard builds must pickle to fork workers) ---


def build_timeout_chain(sim, seed, n):
    """A process delivering ``n`` pseudo-random timeouts; finalize
    returns the delivery times."""
    delays = np.random.default_rng(seed).random(n)
    delivered = []

    def proc():
        for d in delays:
            yield sim.timeout(float(d))
            delivered.append(sim.now)

    sim.process(proc())
    return lambda: list(delivered)


def build_link_traffic(sim, seed, n):
    """``n`` serialized transfers over a private link; finalize returns
    (delivery time, bytes) pairs plus the link's occupancy counters."""
    from repro.sim.resources import SerialLink
    from repro.utils.units import Bandwidth

    rng = np.random.default_rng(seed)
    link = SerialLink(sim, bandwidth=Bandwidth(8e9), latency=1e-6)
    done = []

    def proc():
        for size in rng.integers(64, 4096, n):
            yield link.transmit(int(size))
            done.append((sim.now, int(size)))

    sim.process(proc())
    return lambda: (list(done), link.busy_time, link.bytes_sent)


def _exploding_build(sim):
    raise ValueError("bad shard build")


def _reference_delivery(specs):
    """Ground truth: all shards co-scheduled on ONE sequential simulator,
    merged canonically as (time, key, per-shard index)."""
    sim = Simulator()
    logs = {}
    for key, seed, n in specs:
        delays = np.random.default_rng(seed).random(n)
        logs[key] = []

        def proc(delays=delays, log=logs[key]):
            for d in delays:
                yield sim.timeout(float(d))
                log.append(sim.now)

        sim.process(proc())
    sim.run()
    merged = [
        (t, key, i) for key, log in logs.items() for i, t in enumerate(log)
    ]
    merged.sort()
    return merged, {k: v for k, v in logs.items()}


def _shards(specs):
    return [SimShard(key, build_timeout_chain, (seed, n)) for key, seed, n in specs]


SPEC_STRATEGY = st.lists(
    st.tuples(st.integers(0, 10_000), st.integers(0, 12)),
    min_size=1,
    max_size=5,
).map(lambda lst: [(f"s{i:02d}", seed, n) for i, (seed, n) in enumerate(lst)])


class TestSequentialEquivalence:
    @given(specs=SPEC_STRATEGY, data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_any_shard_assignment_matches_sequential(self, specs, data):
        """Hypothesis property: per-shard delivery times == the single
        co-scheduled-simulator reference, and the canonical event merge
        is invariant to shard permutation and lookahead choice."""
        _, ref_logs = _reference_delivery(specs)
        ref = run_shards(_shards(specs), workers=1, record_events=True)
        assert ref.results == ref_logs

        order = data.draw(st.permutations(specs))
        lookahead = data.draw(
            st.sampled_from([0.0, 1e-9, default_lookahead(), 0.25, 10.0])
        )
        result = run_shards(
            _shards(order), workers=1, lookahead=lookahead, record_events=True
        )
        assert result.merged_events() == ref.merged_events()
        assert result.results == ref_logs

    @given(specs=SPEC_STRATEGY)
    @settings(max_examples=15, deadline=None)
    def test_until_clamps_like_sequential_run(self, specs):
        until = 1.5
        ref = run_shards(_shards(specs), workers=1, record_events=True)
        result = run_shards(
            _shards(specs), workers=1, until=until, record_events=True
        )
        assert result.merged_events() == [
            e for e in ref.merged_events() if e[0] <= until
        ]
        # finish() clamps every shard clock to exactly `until`.
        assert result.end_time == until


class TestWorkerCountInvariance:
    def _run(self, workers, shard_order=1):
        specs = [(f"s{i}", 40 + i, 30) for i in range(4)][::shard_order]
        return run_shards(
            [SimShard(k, build_link_traffic, (seed, n)) for k, seed, n in specs],
            workers=workers,
            record_events=True,
        )

    def test_one_two_and_three_workers_bit_identical(self):
        ref = self._run(1)
        for workers, order in [(2, 1), (3, -1)]:
            got = self._run(workers, shard_order=order)
            assert got.results == ref.results
            assert got.merged_events() == ref.merged_events()
            assert got.end_time == ref.end_time
            assert got.total_events == ref.total_events
            assert got.workers == workers

    def test_kernel_backend_invariance(self):
        ref = run_shards(
            _shards([("a", 1, 20), ("b", 2, 20)]), workers=1,
            kernel="numpy", record_events=True,
        )
        for kernel in ("scalar", "numba"):
            got = run_shards(
                _shards([("a", 1, 20), ("b", 2, 20)]), workers=1,
                kernel=kernel, record_events=True,
            )
            assert got.merged_events() == ref.merged_events()
            assert got.results == ref.results

    def test_metrics_counters_merge_across_workers(self):
        def build(sim, key):
            def proc():
                yield sim.timeout(0.5)
                sim.metrics.counter(f"done.{key}").inc()
                sim.metrics.counter("done.total").inc()

            sim.process(proc())
            return None

        shards = [SimShard(f"m{i}", build, (f"m{i}",)) for i in range(3)]
        seq = run_shards(shards, workers=1, metrics=True)
        par = run_shards(shards, workers=3, metrics=True)
        assert seq.counters == par.counters
        assert seq.counters["done.total"] == 3


class TestValidationAndEdges:
    def test_duplicate_keys_rejected(self):
        shards = _shards([("dup", 1, 3), ("dup", 2, 3)])
        with pytest.raises(ValueError, match="unique"):
            run_shards(shards, workers=1)

    def test_negative_lookahead_rejected(self):
        with pytest.raises(ValueError, match="lookahead"):
            run_shards(_shards([("a", 1, 3)]), workers=1, lookahead=-1.0)

    def test_empty_shard_list(self):
        result = run_shards([], workers=1)
        assert isinstance(result, ParallelResult)
        assert result.outcomes == []
        assert result.end_time == 0.0
        assert result.total_events == 0

    def test_zero_lookahead_makes_progress(self):
        result = run_shards(
            _shards([("a", 3, 10), ("b", 4, 10)]),
            workers=1,
            lookahead=0.0,
            record_events=True,
        )
        # Every timeout delivered despite empty windows being possible.
        assert [len(v) for v in result.results.values()] == [10, 10]
        assert result.windows >= 1

    def test_build_error_propagates_inline(self):
        with pytest.raises(ValueError, match="bad shard build"):
            run_shards([SimShard("x", _exploding_build)], workers=1)

    def test_build_error_propagates_from_worker(self):
        shards = [
            SimShard("x", _exploding_build),
            SimShard("y", build_timeout_chain, (1, 2)),
        ]
        with pytest.raises(RuntimeError, match="bad shard build"):
            run_shards(shards, workers=2)


def _square(x):
    return x * x


def _tag(key, value):
    return {"key": key, "value": value}


class TestShardedTasks:
    def test_workers_one_and_two_identical(self):
        shards = [TaskShard(f"t{i}", _square, (i,)) for i in range(5)]
        seq = run_sharded_tasks(shards, workers=1)
        par = run_sharded_tasks(shards, workers=2)
        assert seq == par == {f"t{i}": i * i for i in range(5)}

    def test_submission_order_irrelevant(self):
        shards = [TaskShard(f"t{i}", _tag, (f"t{i}", i)) for i in range(4)]
        fwd = run_sharded_tasks(shards, workers=2)
        rev = run_sharded_tasks(list(reversed(shards)), workers=2)
        assert fwd == rev

    def test_duplicate_keys_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            run_sharded_tasks([TaskShard("x", _square, (1,)),
                               TaskShard("x", _square, (2,))])
