"""Tests for the LZ4 codec and quantization baselines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    ZeroQuantTimeModel,
    compression_ratio,
    dequantize_int8,
    lz4_compress,
    lz4_decompress,
    quantize_int8,
)
from repro.compression.lz4 import lz4_pipeline_time
from repro.compression.quant import teco_training_hours
from repro.models import get_model
from repro.offload.timing import HardwareParams


class TestLZ4RoundTrip:
    def test_empty(self):
        assert lz4_decompress(lz4_compress(b"")) == b""

    def test_short_input(self):
        data = b"hello"
        assert lz4_decompress(lz4_compress(data)) == data

    def test_repetitive_compresses_well(self):
        data = b"abcd" * 4096
        comp = lz4_compress(data)
        assert len(comp) < len(data) / 10
        assert lz4_decompress(comp) == data

    def test_random_bytes_roundtrip(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 256, 20_000, dtype=np.uint8).tobytes()
        comp = lz4_compress(data)
        assert lz4_decompress(comp) == data

    def test_overlapping_match(self):
        """RLE-style data relies on overlapping match copies."""
        data = b"a" * 1000
        comp = lz4_compress(data)
        assert lz4_decompress(comp) == data
        assert len(comp) < 30

    def test_long_literal_runs(self):
        rng = np.random.default_rng(1)
        data = rng.integers(0, 256, 1000, dtype=np.uint8).tobytes()
        # random data -> one long literal run with length extensions
        assert lz4_decompress(lz4_compress(data)) == data

    @given(st.binary(max_size=3000))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, data):
        assert lz4_decompress(lz4_compress(data)) == data

    @given(
        st.integers(1, 50),
        st.integers(1, 30),
        st.integers(2, 200),
    )
    @settings(max_examples=40, deadline=None)
    def test_periodic_data_roundtrip(self, period, reps, tail):
        rng = np.random.default_rng(period * 1000 + reps)
        unit = rng.integers(0, 256, period, dtype=np.uint8).tobytes()
        data = unit * reps + bytes(tail)
        assert lz4_decompress(lz4_compress(data)) == data

    def test_invalid_offset_rejected(self):
        # token: 0 literals, match len 4, offset 0 -> invalid
        with pytest.raises(ValueError):
            lz4_decompress(bytes([0x00, 0x00, 0x00]))


class TestCompressionOnTensors:
    def test_fp32_training_weights_barely_compress(self):
        """Table VIII: compression ratio on trained FP32 parameters is
        0-36% — random mantissas defeat byte-oriented LZ matching."""
        rng = np.random.default_rng(2)
        weights = rng.standard_normal(16_384).astype(np.float32)
        ratio = compression_ratio(weights.tobytes())
        assert ratio < 0.36

    def test_structured_tensor_compresses_more(self):
        x = np.zeros(16_384, dtype=np.float32)  # pruned/sparse tensor
        assert compression_ratio(x.tobytes()) > 0.9

    def test_pipeline_time_exceeds_raw_transfer(self):
        """Compress+decompress overhead makes LZ4 slower than shipping
        raw bytes at the paper's compression ratios (<= 36%)."""
        n = 1e9
        raw_link_time = n / 15.1e9
        pipe = lz4_pipeline_time(n, ratio=0.36)
        assert pipe > raw_link_time

    def test_pipeline_args_validated(self):
        with pytest.raises(ValueError):
            lz4_pipeline_time(-1, 0.1)
        with pytest.raises(ValueError):
            lz4_pipeline_time(10, 1.5)
        with pytest.raises(ValueError):
            lz4_pipeline_time(10, 0.5, compress_bw=0)


class TestQuantization:
    def test_roundtrip_error_bounded(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal(1000).astype(np.float32)
        q = quantize_int8(x)
        back = dequantize_int8(q)
        assert np.max(np.abs(back - x)) <= q.scale / 2 + 1e-7

    def test_compression_factor_4x(self):
        x = np.zeros(1000, dtype=np.float32)
        q = quantize_int8(x)
        assert q.nbytes < x.nbytes / 3.9

    def test_zero_tensor(self):
        q = quantize_int8(np.zeros(8, dtype=np.float32))
        assert q.scale == 1.0
        np.testing.assert_array_equal(dequantize_int8(q), np.zeros(8))


class TestZeroQuantTimeModel:
    def test_table7_ratio_band(self):
        """ZeRO-Quant takes ~2.9x longer than TECO (paper: 5.8h vs 2.03h
        for Bert-base on GLUE-MNLI)."""
        hw = HardwareParams.paper_default()
        spec = get_model("bert-base-uncased")
        batch, steps = 16, 70_000
        zq = ZeroQuantTimeModel(hw).training_hours(spec, batch, steps)
        teco = teco_training_hours(spec, batch, steps, hw)
        assert 2.0 < zq / teco < 4.0

    def test_invalid_steps(self):
        hw = HardwareParams.paper_default()
        spec = get_model("bert-base-uncased")
        with pytest.raises(ValueError):
            ZeroQuantTimeModel(hw).training_hours(spec, 16, 0)
        with pytest.raises(ValueError):
            teco_training_hours(spec, 16, 0, hw)
