"""Tests for the LZ4 codec and quantization baselines."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import (
    ZeroQuantTimeModel,
    compression_ratio,
    dequantize_int8,
    lz4_compress,
    lz4_decompress,
    quantize_int8,
)
from repro.compression.lz4 import lz4_pipeline_time
from repro.compression.quant import teco_training_hours
from repro.models import get_model
from repro.offload.timing import HardwareParams


class TestLZ4RoundTrip:
    def test_empty(self):
        assert lz4_decompress(lz4_compress(b"")) == b""

    def test_short_input(self):
        data = b"hello"
        assert lz4_decompress(lz4_compress(data)) == data

    def test_repetitive_compresses_well(self):
        data = b"abcd" * 4096
        comp = lz4_compress(data)
        assert len(comp) < len(data) / 10
        assert lz4_decompress(comp) == data

    def test_random_bytes_roundtrip(self):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 256, 20_000, dtype=np.uint8).tobytes()
        comp = lz4_compress(data)
        assert lz4_decompress(comp) == data

    def test_overlapping_match(self):
        """RLE-style data relies on overlapping match copies."""
        data = b"a" * 1000
        comp = lz4_compress(data)
        assert lz4_decompress(comp) == data
        assert len(comp) < 30

    def test_long_literal_runs(self):
        rng = np.random.default_rng(1)
        data = rng.integers(0, 256, 1000, dtype=np.uint8).tobytes()
        # random data -> one long literal run with length extensions
        assert lz4_decompress(lz4_compress(data)) == data

    @given(st.binary(max_size=3000))
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, data):
        assert lz4_decompress(lz4_compress(data)) == data

    @given(
        st.integers(1, 50),
        st.integers(1, 30),
        st.integers(2, 200),
    )
    @settings(max_examples=40, deadline=None)
    def test_periodic_data_roundtrip(self, period, reps, tail):
        rng = np.random.default_rng(period * 1000 + reps)
        unit = rng.integers(0, 256, period, dtype=np.uint8).tobytes()
        data = unit * reps + bytes(tail)
        assert lz4_decompress(lz4_compress(data)) == data

    def test_invalid_offset_rejected(self):
        # token: 0 literals, match len 4, offset 0 -> invalid
        with pytest.raises(ValueError):
            lz4_decompress(bytes([0x00, 0x00, 0x00]))


class TestLZ4Truncation:
    """Truncated blocks must raise ValueError — never IndexError.

    Regression for the decoder's mid-offset and mid-extension-byte
    reads, which previously escaped as raw ``IndexError``.
    """

    @staticmethod
    def _assert_never_index_error(block: bytes) -> None:
        for cut in range(len(block)):
            try:
                lz4_decompress(block[:cut])
            except ValueError:
                pass  # the documented failure mode
            # A prefix can also be a *valid* shorter block (e.g. a cut
            # at a sequence boundary); success is fine.  IndexError (or
            # anything else) propagates and fails the test.

    def test_every_cut_point_of_matchy_block(self):
        self._assert_never_index_error(lz4_compress(b"abcd" * 600))

    def test_every_cut_point_of_literal_block(self):
        rng = np.random.default_rng(7)
        data = rng.integers(0, 256, 700, dtype=np.uint8).tobytes()
        self._assert_never_index_error(lz4_compress(data))

    def test_every_cut_point_of_overlap_block(self):
        self._assert_never_index_error(lz4_compress(b"x" * 5000))

    def test_cut_mid_offset(self):
        # token: 4 literals + match, then only ONE offset byte present.
        with pytest.raises(ValueError):
            lz4_decompress(bytes([0x40]) + b"abcd" + bytes([0x04]))

    def test_cut_mid_literal_length_extension(self):
        # token 0xF0 promises >= 15 literals with extension bytes; a
        # bare 255-run with no terminator is truncated mid-extension.
        with pytest.raises(ValueError):
            lz4_decompress(bytes([0xF0]))
        with pytest.raises(ValueError):
            lz4_decompress(bytes([0xF0, 255, 255]))

    def test_cut_mid_match_length_extension(self):
        # 1 literal 'a', match-len field 15 -> extension expected, then
        # offset 1 and no extension byte.
        with pytest.raises(ValueError):
            lz4_decompress(bytes([0x1F, ord("a"), 0x01, 0x00]))

    @given(st.binary(max_size=400), st.integers(0, 400))
    @settings(max_examples=80, deadline=None)
    def test_truncation_fuzz(self, data, cut):
        block = lz4_compress(data)
        cut = min(cut, len(block))
        try:
            lz4_decompress(block[:cut])
        except ValueError:
            pass

    @given(st.binary(max_size=200))
    @settings(max_examples=60, deadline=None)
    def test_garbage_never_index_error(self, garbage):
        try:
            lz4_decompress(garbage)
        except ValueError:
            pass


class TestGradientShapedPayloads:
    """LZ4 round-trips on the payloads the offload path actually moves."""

    def test_sparse_gradient_roundtrip(self):
        rng = np.random.default_rng(11)
        grads = np.zeros(8192, dtype=np.float32)
        idx = rng.choice(8192, 200, replace=False)
        grads[idx] = rng.standard_normal(200).astype(np.float32)
        data = grads.tobytes()
        comp = lz4_compress(data)
        assert lz4_decompress(comp) == data
        assert compression_ratio(data) > 0.5  # mostly-zero payload

    def test_dba_packed_payload_roundtrip(self):
        from repro.dba.aggregator import Aggregator
        from repro.dba.registers import DBARegister

        rng = np.random.default_rng(12)
        tensor = rng.standard_normal(4096).astype(np.float32)
        packed = Aggregator(
            DBARegister(enabled=True, dirty_bytes=2)
        ).pack_tensor(tensor)
        data = packed.tobytes()
        assert lz4_decompress(lz4_compress(data)) == data

    def test_incompressible_random_roundtrip_and_expansion(self):
        rng = np.random.default_rng(13)
        data = rng.integers(0, 256, 65_536, dtype=np.uint8).tobytes()
        comp = lz4_compress(data)
        assert lz4_decompress(comp) == data
        # Incompressible payloads pay framing overhead: the true ratio
        # is negative (regression: it used to be clamped to 0.0).
        assert compression_ratio(data) < 0.0

    def test_negative_ratio_flows_through_pipeline(self):
        data = np.random.default_rng(14).integers(
            0, 256, 4096, dtype=np.uint8
        ).tobytes()
        ratio = compression_ratio(data)
        assert ratio < 0.0
        # An expanding payload moves MORE than its raw bytes.
        n = float(len(data))
        t = lz4_pipeline_time(n, ratio)
        t_ideal = lz4_pipeline_time(n, 0.0)
        assert t > t_ideal


class TestCompressionOnTensors:
    def test_fp32_training_weights_barely_compress(self):
        """Table VIII: compression ratio on trained FP32 parameters is
        0-36% — random mantissas defeat byte-oriented LZ matching."""
        rng = np.random.default_rng(2)
        weights = rng.standard_normal(16_384).astype(np.float32)
        ratio = compression_ratio(weights.tobytes())
        assert ratio < 0.36

    def test_structured_tensor_compresses_more(self):
        x = np.zeros(16_384, dtype=np.float32)  # pruned/sparse tensor
        assert compression_ratio(x.tobytes()) > 0.9

    def test_pipeline_time_exceeds_raw_transfer(self):
        """Compress+decompress overhead makes LZ4 slower than shipping
        raw bytes at the paper's compression ratios (<= 36%)."""
        n = 1e9
        raw_link_time = n / 15.1e9
        pipe = lz4_pipeline_time(n, ratio=0.36)
        assert pipe > raw_link_time

    def test_pipeline_args_validated(self):
        with pytest.raises(ValueError):
            lz4_pipeline_time(-1, 0.1)
        with pytest.raises(ValueError):
            lz4_pipeline_time(10, 1.5)
        with pytest.raises(ValueError):
            lz4_pipeline_time(10, 0.5, compress_bw=0)


class TestQuantization:
    def test_roundtrip_error_bounded(self):
        rng = np.random.default_rng(3)
        x = rng.standard_normal(1000).astype(np.float32)
        q = quantize_int8(x)
        back = dequantize_int8(q)
        assert np.max(np.abs(back - x)) <= q.scale / 2 + 1e-7

    def test_compression_factor_4x(self):
        x = np.zeros(1000, dtype=np.float32)
        q = quantize_int8(x)
        assert q.nbytes < x.nbytes / 3.9

    def test_zero_tensor(self):
        q = quantize_int8(np.zeros(8, dtype=np.float32))
        assert q.scale == 1.0
        np.testing.assert_array_equal(dequantize_int8(q), np.zeros(8))

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_non_finite_input_rejected(self, bad):
        """Regression: NaN/Inf used to silently poison the scale."""
        x = np.ones(16, dtype=np.float32)
        x[3] = bad
        with pytest.raises(ValueError, match="finite"):
            quantize_int8(x)

    def test_empty_tensor_ok(self):
        q = quantize_int8(np.zeros(0, dtype=np.float32))
        assert q.scale == 1.0
        assert dequantize_int8(q).size == 0


class TestZeroQuantTimeModel:
    def test_table7_ratio_band(self):
        """ZeRO-Quant takes ~2.9x longer than TECO (paper: 5.8h vs 2.03h
        for Bert-base on GLUE-MNLI)."""
        hw = HardwareParams.paper_default()
        spec = get_model("bert-base-uncased")
        batch, steps = 16, 70_000
        zq = ZeroQuantTimeModel(hw).training_hours(spec, batch, steps)
        teco = teco_training_hours(spec, batch, steps, hw)
        assert 2.0 < zq / teco < 4.0

    def test_invalid_steps(self):
        hw = HardwareParams.paper_default()
        spec = get_model("bert-base-uncased")
        with pytest.raises(ValueError):
            ZeroQuantTimeModel(hw).training_hours(spec, 16, 0)
        with pytest.raises(ValueError):
            teco_training_hours(spec, 16, 0, hw)
