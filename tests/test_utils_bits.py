"""Unit and property tests for repro.utils.bits."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.utils.bits import (
    byte_change_mask,
    changed_byte_count,
    classify_word_changes,
    float32_to_words,
    low_byte_mask,
    merge_low_bytes,
    words_to_float32,
)

f32_arrays = hnp.arrays(
    dtype=np.float32,
    shape=hnp.array_shapes(max_dims=2, max_side=64),
    elements=st.floats(width=32, allow_nan=False),
)


class TestWordViews:
    def test_roundtrip_view(self):
        x = np.array([1.0, -2.5, 0.0, 3.14], dtype=np.float32)
        w = float32_to_words(x)
        assert w.dtype == np.uint32
        back = words_to_float32(w)
        np.testing.assert_array_equal(back, x)

    def test_view_is_zero_copy(self):
        x = np.zeros(4, dtype=np.float32)
        w = float32_to_words(x)
        assert w.base is x or w.base is x.base

    def test_rejects_wrong_dtype(self):
        with pytest.raises(TypeError):
            float32_to_words(np.zeros(4, dtype=np.float64))
        with pytest.raises(TypeError):
            words_to_float32(np.zeros(4, dtype=np.int32))

    def test_known_bit_pattern(self):
        # 1.0f == 0x3F800000
        x = np.array([1.0], dtype=np.float32)
        assert float32_to_words(x)[0] == 0x3F800000


class TestLowByteMask:
    @pytest.mark.parametrize(
        "n,expected",
        [(0, 0), (1, 0xFF), (2, 0xFFFF), (3, 0xFFFFFF), (4, 0xFFFFFFFF)],
    )
    def test_values(self, n, expected):
        assert int(low_byte_mask(n)) == expected

    @pytest.mark.parametrize("n", [-1, 5])
    def test_out_of_range(self, n):
        with pytest.raises(ValueError):
            low_byte_mask(n)


class TestMergeLowBytes:
    def test_merge_two_bytes_exact(self):
        stale = np.array([0x11223344], dtype=np.uint32).view(np.float32)
        fresh = np.array([0xAABBCCDD], dtype=np.uint32).view(np.float32)
        merged = merge_low_bytes(stale, fresh, 2)
        assert merged.view(np.uint32)[0] == 0x1122CCDD

    def test_merge_zero_bytes_is_stale(self):
        stale = np.array([1.0, 2.0], dtype=np.float32)
        fresh = np.array([3.0, 4.0], dtype=np.float32)
        np.testing.assert_array_equal(merge_low_bytes(stale, fresh, 0), stale)

    def test_merge_four_bytes_is_fresh(self):
        stale = np.array([1.0, 2.0], dtype=np.float32)
        fresh = np.array([3.0, 4.0], dtype=np.float32)
        np.testing.assert_array_equal(merge_low_bytes(stale, fresh, 4), fresh)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            merge_low_bytes(
                np.zeros(2, dtype=np.float32), np.zeros(3, dtype=np.float32), 2
            )

    def test_inputs_not_modified(self):
        stale = np.array([1.0], dtype=np.float32)
        fresh = np.array([2.0], dtype=np.float32)
        s0, f0 = stale.copy(), fresh.copy()
        merge_low_bytes(stale, fresh, 2)
        np.testing.assert_array_equal(stale, s0)
        np.testing.assert_array_equal(fresh, f0)

    @given(f32_arrays, st.integers(min_value=0, max_value=4))
    @settings(max_examples=50)
    def test_merge_identity_when_equal(self, x, n):
        """Merging an array with itself is the identity at any byte count."""
        merged = merge_low_bytes(x, x, n)
        np.testing.assert_array_equal(
            merged.view(np.uint32), x.view(np.uint32)
        )

    @given(f32_arrays, f32_arrays.map(lambda a: a))
    @settings(max_examples=30)
    def test_merge_idempotent(self, stale, _unused):
        """Applying the same merge twice equals applying it once."""
        fresh = stale[::-1].copy() if stale.ndim == 1 else stale.copy()
        fresh = np.ascontiguousarray(fresh.reshape(stale.shape))
        once = merge_low_bytes(stale, fresh, 2)
        twice = merge_low_bytes(once, fresh, 2)
        np.testing.assert_array_equal(
            once.view(np.uint32), twice.view(np.uint32)
        )


class TestChangeMasks:
    def test_no_change(self):
        x = np.array([1.5, -2.0], dtype=np.float32)
        assert np.all(byte_change_mask(x, x.copy()) == 0)
        assert np.all(changed_byte_count(x, x.copy()) == 0)

    def test_single_low_byte_change(self):
        old = np.array([0x3F800000], dtype=np.uint32).view(np.float32)
        new = np.array([0x3F800001], dtype=np.uint32).view(np.float32)
        assert byte_change_mask(old, new)[0] == 0b0001
        assert changed_byte_count(old, new)[0] == 1

    def test_high_byte_change(self):
        old = np.array([0x3F800000], dtype=np.uint32).view(np.float32)
        new = np.array([0xBF800000], dtype=np.uint32).view(np.float32)
        assert byte_change_mask(old, new)[0] == 0b1000

    def test_all_bytes_change(self):
        old = np.array([0x00000000], dtype=np.uint32).view(np.float32)
        new = np.array([0x01010101], dtype=np.uint32).view(np.float32)
        assert byte_change_mask(old, new)[0] == 0b1111
        assert changed_byte_count(old, new)[0] == 4

    @given(f32_arrays)
    @settings(max_examples=50)
    def test_mask_symmetric(self, x):
        y = np.ascontiguousarray(x[::-1].copy().reshape(x.shape))
        np.testing.assert_array_equal(
            byte_change_mask(x, y), byte_change_mask(y, x)
        )


class TestClassification:
    def test_counts_sum(self):
        rng = np.random.default_rng(0)
        old = rng.standard_normal(1000).astype(np.float32)
        new = old + rng.standard_normal(1000).astype(np.float32) * 1e-4
        stats = classify_word_changes(old, new)
        assert (
            stats["last_byte"] + stats["last_two_bytes"] + stats["other"]
            == stats["changed"]
        )
        assert stats["changed"] + stats["unchanged"] == 1000

    def test_case1_only_last_byte(self):
        old = np.array([0x3F800000, 0x3F800000], dtype=np.uint32).view(np.float32)
        new = np.array([0x3F8000FF, 0x3F80FF00], dtype=np.uint32).view(np.float32)
        stats = classify_word_changes(old, new)
        assert stats["last_byte"] == 1  # first word: byte0 only
        assert stats["last_two_bytes"] == 1  # second word: byte1 only
        assert stats["other"] == 0

    def test_case3_exponent_change(self):
        old = np.array([1.0], dtype=np.float32)
        new = np.array([2.0], dtype=np.float32)  # exponent differs
        stats = classify_word_changes(old, new)
        assert stats["other"] == 1

    def test_small_perturbation_is_low_byte_dominated(self):
        """Tiny relative updates mostly perturb low mantissa bytes —
        the empirical basis of the paper's Observation 2."""
        rng = np.random.default_rng(1)
        old = rng.standard_normal(20000).astype(np.float32)
        new = (old.astype(np.float64) * (1 + 1e-6)).astype(np.float32)
        stats = classify_word_changes(old, new)
        low2 = stats["last_byte"] + stats["last_two_bytes"]
        assert low2 / max(stats["changed"], 1) > 0.9
