"""Tests for the NVMe tier model and activation checkpointing."""

import pytest

from repro.models import MODEL_REGISTRY, evaluation_models, get_model
from repro.offload import MemoryModel
from repro.offload.engines import ZeROOffloadEngine
from repro.offload.nvme import NVMeTierModel, Tier
from repro.utils.units import GIB


class TestNVMeTiering:
    def test_all_paper_workloads_fit_in_dram(self):
        """The Section VIII-A argument: every Table III model's CPU-side
        state fits the 372 GB host, so ZeRO-Infinity regresses to
        ZeRO-Offload and the paper's baseline choice is justified."""
        model = NVMeTierModel()
        for spec in MODEL_REGISTRY.values():
            assert model.tier_of(spec) is Tier.DRAM, spec.name
            assert model.swap_overhead(spec) == 0.0

    def test_regression_claim_step_identical(self):
        """With DRAM sufficient, the ZeRO-Infinity step equals the
        ZeRO-Offload step exactly."""
        model = NVMeTierModel()
        spec = get_model("bert-large-cased")
        infinity = model.simulate_step(spec, 4)
        offload = ZeROOffloadEngine(spec, 4).simulate_step()
        assert infinity.total == offload.total
        assert infinity.optimizer == offload.optimizer

    def test_small_host_forces_nvme_and_slows_down(self):
        """A 100B-scale state on a small host spills and pays swap time."""
        small_host = NVMeTierModel(dram_capacity_bytes=64 * GIB)
        spec = get_model("gpt2-11b")  # 44 GB params -> 176 GB state
        assert small_host.tier_of(spec) is Tier.NVME
        infinity = small_host.simulate_step(spec, 4)
        offload = ZeROOffloadEngine(spec, 4).simulate_step()
        assert infinity.total > offload.total
        assert infinity.optimizer > offload.optimizer

    def test_state_arithmetic(self):
        model = NVMeTierModel()
        bert = get_model("bert-large-cased")
        assert model.cpu_state_bytes(bert) == pytest.approx(
            4 * bert.param_bytes
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            NVMeTierModel(dram_capacity_bytes=0)


class TestActivationCheckpointing:
    def test_reduces_activation_footprint(self):
        spec = get_model("t5-large")
        plain = MemoryModel()
        ckpt = MemoryModel(activation_checkpointing=True)
        assert ckpt.activation_bytes(spec, 8) < 0.3 * plain.activation_bytes(
            spec, 8
        )

    def test_enables_larger_batches(self):
        spec = get_model("t5-large")
        plain = MemoryModel(mixed_precision=False)
        ckpt = MemoryModel(mixed_precision=False, activation_checkpointing=True)
        # The paper's OOM case fits once activations are checkpointed.
        assert not plain.gpu_budget(spec, 16, seq_len=512).fits
        assert ckpt.gpu_budget(spec, 16, seq_len=512).fits

    def test_costs_backward_flops(self):
        assert MemoryModel().recompute_backward_overhead == 0.0
        assert MemoryModel(
            activation_checkpointing=True
        ).recompute_backward_overhead == pytest.approx(1 / 3)

    def test_gnn_unaffected_shape(self):
        """Full-graph GNN activations follow the same reduction rule."""
        spec = get_model("gcnii")
        plain = MemoryModel()
        # GNN branch returns before checkpointing applies; footprint equal.
        ckpt = MemoryModel(activation_checkpointing=True)
        assert ckpt.activation_bytes(spec, 1) == plain.activation_bytes(spec, 1)
