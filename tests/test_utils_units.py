"""Tests for unit helpers and table formatting."""

import pytest

from repro.utils.tables import format_table
from repro.utils.units import (
    GB,
    MS,
    NS,
    Bandwidth,
    bytes_human,
    seconds_human,
)


class TestBandwidth:
    def test_time_for(self):
        bw = Bandwidth.gb_per_s(16)  # PCIe 3.0 x16
        assert bw.time_for(16 * GB) == pytest.approx(1.0)
        assert bw.time_for(0) == 0.0

    def test_bytes_in(self):
        bw = Bandwidth.gb_per_s(10)
        assert bw.bytes_in(2.0) == pytest.approx(20 * GB)

    def test_scaled_cxl_efficiency(self):
        pcie = Bandwidth.gb_per_s(16)
        cxl = pcie.scaled(0.943)
        assert cxl.bytes_per_second == pytest.approx(16 * GB * 0.943)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            Bandwidth(0)
        with pytest.raises(ValueError):
            Bandwidth(-1)

    def test_rejects_negative_amounts(self):
        bw = Bandwidth.gb_per_s(1)
        with pytest.raises(ValueError):
            bw.time_for(-1)
        with pytest.raises(ValueError):
            bw.bytes_in(-1)

    def test_cache_line_time_magnitude(self):
        """A 64B line on ~15 GB/s CXL takes ~4 ns (Section VIII-D)."""
        cxl = Bandwidth.gb_per_s(16).scaled(0.943)
        t = cxl.time_for(64)
        assert 3 * NS < t < 5 * NS


class TestHumanFormats:
    def test_bytes_human(self):
        assert bytes_human(512) == "512.0 B"
        assert bytes_human(2048) == "2.0 KiB"
        assert "MiB" in bytes_human(5 * 2**20)

    def test_seconds_human(self):
        assert seconds_human(2.0).endswith(" s")
        assert seconds_human(5 * MS).endswith(" ms")
        assert seconds_human(3 * NS).endswith(" ns")


class TestFormatTable:
    def test_basic(self):
        out = format_table(
            ["model", "speedup"], [["GPT2", 1.82], ["T5", 1.73]], title="T"
        )
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "model" in lines[1]
        assert "1.820" in out

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_alignment(self):
        out = format_table(["x"], [["longvalue"], ["s"]])
        rows = out.splitlines()
        assert len(rows[1]) >= len("longvalue")


class TestRngSpawn:
    def test_children_independent_and_deterministic(self):
        from repro.utils.rng import make_rng, spawn

        a = spawn(make_rng(7), 3)
        b = spawn(make_rng(7), 3)
        import numpy as np

        for ga, gb in zip(a, b):
            np.testing.assert_array_equal(
                ga.integers(0, 100, 5), gb.integers(0, 100, 5)
            )
        # siblings differ
        x = spawn(make_rng(7), 2)
        assert list(x[0].integers(0, 1 << 30, 4)) != list(
            x[1].integers(0, 1 << 30, 4)
        )

    def test_negative_rejected(self):
        from repro.utils.rng import make_rng, spawn

        with pytest.raises(ValueError):
            spawn(make_rng(), -1)


class TestFlitPacketConsistency:
    def test_header_overheads_within_one_percent(self):
        """The packet model (4B header per 64B slot) and the flit model
        (68B per 64B payload) agree on streaming overhead."""
        from repro.interconnect.flits import streaming_efficiency
        from repro.interconnect.packets import packet_wire_bytes

        n = 1 << 20
        packet_eff = n / packet_wire_bytes(n)
        flit_eff = streaming_efficiency(stream_bytes=n)
        assert abs(packet_eff - flit_eff) < 0.01
