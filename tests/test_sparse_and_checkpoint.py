"""Tests for sparse GCNII propagation and trainer checkpointing."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.dba import ActivationPolicy
from repro.offload import OffloadTrainer, TrainerMode
from repro.tensor.gnn import GCNII, normalized_adjacency
from repro.tensor.sparse import normalized_adjacency_sparse, spmm
from repro.tensor.tensor import Tensor
from repro.tensor.transformer import TinyTransformerLM

RNG = lambda s=0: np.random.default_rng(s)


def random_graph(rng, n=20):
    adj = (rng.random((n, n)) < 0.2).astype(np.float32)
    adj = np.maximum(adj, adj.T)
    np.fill_diagonal(adj, 0)
    return adj


class TestSpmm:
    def test_forward_matches_dense(self):
        rng = RNG(0)
        dense = random_graph(rng)
        x = Tensor(rng.standard_normal((20, 5)).astype(np.float32))
        sparse = sp.csr_matrix(dense)
        np.testing.assert_allclose(
            spmm(sparse, x).data, dense @ x.data, rtol=1e-5
        )

    def test_backward_matches_dense(self):
        rng = RNG(1)
        dense = random_graph(rng)
        x0 = rng.standard_normal((20, 4)).astype(np.float32)
        w = rng.standard_normal((20, 4)).astype(np.float32)

        xd = Tensor(x0.copy(), requires_grad=True)
        (Tensor(dense) @ xd * Tensor(w)).sum().backward()

        xs = Tensor(x0.copy(), requires_grad=True)
        (spmm(sp.csr_matrix(dense), xs) * Tensor(w)).sum().backward()
        np.testing.assert_allclose(xs.grad, xd.grad, rtol=1e-4, atol=1e-6)

    def test_type_and_shape_validation(self):
        x = Tensor(np.zeros((4, 2), dtype=np.float32))
        with pytest.raises(TypeError):
            spmm(np.zeros((4, 4)), x)
        with pytest.raises(ValueError):
            spmm(sp.eye(3, format="csr"), x)


class TestSparseNormalization:
    def test_matches_dense_normalization(self):
        rng = RNG(2)
        adj = random_graph(rng)
        dense = normalized_adjacency(adj)
        sparse = normalized_adjacency_sparse(sp.csr_matrix(adj))
        np.testing.assert_allclose(sparse.toarray(), dense, rtol=1e-5)

    def test_validation(self):
        with pytest.raises(TypeError):
            normalized_adjacency_sparse(np.eye(3))
        with pytest.raises(ValueError):
            normalized_adjacency_sparse(sp.csr_matrix((2, 3)))


class TestSparseGCNII:
    def test_sparse_equals_dense_forward(self):
        rng = RNG(3)
        adj = random_graph(rng)
        feats = rng.standard_normal((20, 8)).astype(np.float32)
        model = GCNII(8, 16, 3, n_layers=3, rng=RNG(4))
        dense_out = model(feats, normalized_adjacency(adj)).data
        sparse_out = model(
            feats, normalized_adjacency_sparse(sp.csr_matrix(adj))
        ).data
        np.testing.assert_allclose(sparse_out, dense_out, rtol=1e-4, atol=1e-5)

    def test_sparse_training_through_offload_trainer(self):
        rng = RNG(5)
        adj = random_graph(rng)
        feats = rng.standard_normal((20, 8)).astype(np.float32)
        labels = rng.integers(0, 2, 20)
        a_hat = normalized_adjacency_sparse(sp.csr_matrix(adj))
        model = GCNII(8, 16, 2, n_layers=2, rng=RNG(6))
        trainer = OffloadTrainer(model, lr=5e-3)
        first = trainer.step(feats, a_hat, labels).loss
        for _ in range(40):
            last = trainer.step(feats, a_hat, labels).loss
        assert last < first


class TestCheckpointing:
    def _trainer(self, seed=7, mode=TrainerMode.ZERO_OFFLOAD):
        model = TinyTransformerLM(
            vocab=16, dim=16, n_heads=2, n_layers=1, max_seq=12, rng=RNG(seed)
        )
        return OffloadTrainer(
            model, mode=mode, lr=2e-3,
            policy=ActivationPolicy(act_aft_steps=3, dirty_bytes=2),
        )

    def _batches(self, n, seed=8):
        rng = RNG(seed)
        return [(rng.integers(0, 16, (4, 10)),) for _ in range(n)]

    def test_resume_is_bit_exact(self, tmp_path):
        batches = self._batches(10)
        # Uninterrupted reference run.
        ref = self._trainer()
        ref.train(batches)

        # Interrupted run: checkpoint at step 5, resume in a new trainer.
        first = self._trainer()
        first.train(batches[:5])
        ckpt = tmp_path / "ckpt.npz"
        first.save_checkpoint(ckpt)

        resumed = self._trainer()
        resumed.load_checkpoint(ckpt)
        results = resumed.train(batches[5:])

        np.testing.assert_array_equal(resumed.arena.params, ref.arena.params)
        assert results[-1].loss == ref.history[-1].loss
        assert resumed.step_count == ref.step_count

    def test_dba_state_survives_checkpoint(self, tmp_path):
        trainer = self._trainer(mode=TrainerMode.TECO_REDUCTION)
        trainer.train(self._batches(5))
        assert trainer.policy.active
        ckpt = tmp_path / "dba.npz"
        trainer.save_checkpoint(ckpt)

        fresh = self._trainer(mode=TrainerMode.TECO_REDUCTION)
        assert not fresh.policy.active
        fresh.load_checkpoint(ckpt)
        assert fresh.policy.active
        assert fresh.policy.activated_at == trainer.policy.activated_at
        np.testing.assert_array_equal(fresh.gpu_params, trainer.gpu_params)

    def test_mismatched_model_rejected(self, tmp_path):
        trainer = self._trainer()
        ckpt = tmp_path / "x.npz"
        trainer.save_checkpoint(ckpt)
        other = OffloadTrainer(
            TinyTransformerLM(vocab=16, dim=32, n_heads=2, n_layers=1,
                              max_seq=12, rng=RNG(9))
        )
        with pytest.raises(ValueError):
            other.load_checkpoint(ckpt)
