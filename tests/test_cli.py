"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_fig12(self, capsys):
        assert main(["fig12"]) == 0
        assert "breakdown" in capsys.readouterr().out

    def test_overheads(self, capsys):
        assert main(["overheads"]) == 0
        assert "DRAM" in capsys.readouterr().out

    def test_table6(self, capsys):
        assert main(["table6"]) == 0
        assert "gpt2-11b" in capsys.readouterr().out

    def test_invalid_experiment(self):
        with pytest.raises(SystemExit):
            main(["nope"])

    def test_registry_complete(self):
        """Every paper table/figure with an experiment id is reachable."""
        required = {
            "table1", "fig2", "fig10", "fig11", "fig12", "table5",
            "table6", "fig13", "table7", "table8", "comm-volume",
            "overheads", "lammps", "invalidation", "ablations",
        }
        assert required <= set(EXPERIMENTS)
