"""Tests for the hardware timing model and DES engines."""

import pytest

from repro.coherence.home_agent import CoherenceMode
from repro.models import evaluation_models, get_model, gpt2_scaling_series
from repro.offload import (
    HardwareParams,
    StepBreakdown,
    SystemKind,
    TECOEngine,
    ZeROOffloadEngine,
    simulate_system,
)


@pytest.fixture(scope="module")
def bert():
    return get_model("bert-large-cased")


@pytest.fixture(scope="module")
def hw():
    return HardwareParams.paper_default()


class TestHardwareParams:
    def test_efficiency_rises_with_batch(self, bert, hw):
        effs = [hw.gpu_efficiency(bert, b) for b in (1, 4, 16, 64)]
        assert effs == sorted(effs)
        assert all(0 < e <= hw.gpu_max_efficiency for e in effs)

    def test_wider_models_utilize_better(self, hw):
        albert = get_model("albert-xxlarge-v1")
        bert = get_model("bert-large-cased")
        assert hw.gpu_efficiency(albert, 4) > hw.gpu_efficiency(bert, 4)

    def test_backward_is_twice_forward(self, bert, hw):
        assert hw.backward_time(bert, 4) == pytest.approx(
            2 * hw.forward_time(bert, 4)
        )

    def test_adam_time_scales_with_params(self, hw):
        small = get_model("gpt2")
        big = get_model("t5-large")
        ratio = hw.adam_time(big) / hw.adam_time(small)
        assert ratio == pytest.approx(
            big.stored_params / small.stored_params, rel=1e-6
        )

    def test_dba_stream_cheaper(self, hw):
        full = hw.cxl_stream_time(1 << 20, dirty_bytes=4)
        half = hw.cxl_stream_time(1 << 20, dirty_bytes=2)
        assert half < full

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            HardwareParams(gpu_peak_flops=0)
        with pytest.raises(ValueError):
            HardwareParams(gpu_max_efficiency=2.0)


class TestStepBreakdown:
    def test_totals(self):
        bd = StepBreakdown(1.0, 2.0, 0.5, 0.1, 0.4, 0.3)
        assert bd.forward_backward == 3.0
        assert bd.communication_exposed == pytest.approx(0.8)
        assert bd.total == pytest.approx(4.3)
        assert bd.communication_fraction == pytest.approx(0.8 / 4.3)

    def test_speedup(self):
        slow = StepBreakdown(1, 2, 1, 0.1, 0.4, 1)
        fast = StepBreakdown(1, 2, 0, 0.1, 0.4, 0)
        assert fast.speedup_over(slow) == pytest.approx(5.5 / 3.5)

    def test_comm_reduction(self):
        slow = StepBreakdown(1, 2, 1, 0.1, 0.4, 1)
        fast = StepBreakdown(1, 2, 0.1, 0.1, 0.4, 0)
        assert fast.comm_overhead_reduction_vs(slow) == pytest.approx(0.95)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            StepBreakdown(-1, 0, 0, 0, 0, 0)

    def test_report_renders(self):
        bd = StepBreakdown(1, 2, 0.5, 0.1, 0.4, 0.3)
        out = bd.report("x")
        assert "forward-backward" in out and "comm fraction" in out


class TestZeROOffloadEngine:
    def test_table1_fraction_shape(self, bert):
        """Exposed-communication fraction decreases with batch and stays in
        the Table I band (roughly 25-50%)."""
        fracs = [
            ZeROOffloadEngine(bert, b).simulate_step().communication_fraction
            for b in (4, 8, 16, 20)
        ]
        assert fracs == sorted(fracs, reverse=True)
        assert 0.35 < fracs[0] < 0.55  # paper: 42.2%
        assert 0.20 < fracs[3] < 0.36  # paper: 25.95%

    def test_transfers_fully_exposed(self, bert, hw):
        bd = ZeROOffloadEngine(bert, 4).simulate_step()
        # synchronous flushes: exposed ~ raw transfer time (+DMA setup)
        assert bd.grad_transfer_exposed >= bd.grad_transfer_raw * 0.95
        assert bd.param_transfer_exposed >= bd.param_transfer_raw * 0.95

    def test_dpu_hides_communication_at_large_batch(self, bert):
        plain = ZeROOffloadEngine(bert, 32).simulate_step()
        dpu = ZeROOffloadEngine(bert, 32, dpu=True).simulate_step()
        assert dpu.communication_exposed < plain.communication_exposed

    def test_dpu_ineffective_at_small_batch(self, bert):
        """Small batch -> small GPU window -> DPU cannot hide everything."""
        dpu = ZeROOffloadEngine(bert, 1, dpu=True).simulate_step()
        assert dpu.communication_exposed > 0

    def test_invalid_batch(self, bert):
        with pytest.raises(ValueError):
            ZeROOffloadEngine(bert, 0)


class TestTECOEngine:
    def test_param_transfer_hidden_with_dba(self, bert):
        """Figure 12: 'When applying DBA, the transfer time is completely
        hidden' for parameters."""
        bd = TECOEngine(bert, 4, dba=True).simulate_step()
        assert bd.param_transfer_exposed < 0.02 * bd.param_transfer_raw + 1e-4

    def test_gradient_hidden_at_batch8(self, bert):
        """Figure 12: gradient transfer completely hidden at batch 8."""
        bd = TECOEngine(bert, 8).simulate_step()
        assert bd.grad_transfer_exposed < 0.05 * bd.grad_transfer_raw + 1e-4

    def test_reduction_beats_cxl(self, bert):
        cxl = TECOEngine(bert, 4, dba=False).simulate_step()
        red = TECOEngine(bert, 4, dba=True).simulate_step()
        assert red.total <= cxl.total
        assert red.wire_bytes < cxl.wire_bytes

    def test_dba_roughly_halves_param_wire_volume(self, bert):
        cxl = TECOEngine(bert, 4, dba=False).simulate_step()
        red = TECOEngine(bert, 4, dba=True).simulate_step()
        saved = cxl.wire_bytes - red.wire_bytes
        assert saved == pytest.approx(bert.param_bytes / 2, rel=0.15)

    def test_invalidation_mode_slower(self, bert):
        """Section IV-A2: on-demand transfers raise training time (+56.6%
        avg across models) vs the update protocol."""
        upd = TECOEngine(bert, 4).simulate_step()
        inv = TECOEngine(
            bert, 4, coherence=CoherenceMode.INVALIDATION
        ).simulate_step()
        assert inv.total > upd.total
        assert inv.communication_exposed > upd.communication_exposed

    def test_invalid_dirty_bytes(self, bert):
        with pytest.raises(ValueError):
            TECOEngine(bert, 4, dirty_bytes=0)


class TestPaperShapes:
    """End-to-end shape assertions against the paper's headline results."""

    def test_speedups_within_paper_band(self):
        """Figure 11 / Table IV: TECO-Reduction wins 1.08x-1.82x."""
        for spec in evaluation_models():
            base = simulate_system(SystemKind.ZERO_OFFLOAD, spec, 4)
            red = simulate_system(SystemKind.TECO_REDUCTION, spec, 4)
            s = red.speedup_over(base)
            assert 1.05 < s < 2.0, f"{spec.name}: {s}"

    def test_albert_benefits_least(self):
        """Observation (2) of Section VIII-B: Albert's compute dominates."""
        speedups = {}
        for spec in evaluation_models():
            if spec.name == "gcnii":
                continue
            base = simulate_system(SystemKind.ZERO_OFFLOAD, spec, 4)
            red = simulate_system(SystemKind.TECO_REDUCTION, spec, 4)
            speedups[spec.name] = red.speedup_over(base)
        assert min(speedups, key=speedups.get) == "albert-xxlarge-v1"

    def test_speedup_decreases_with_batch(self):
        for spec in evaluation_models():
            if spec.name == "gcnii":
                continue
            s = []
            for b in (4, 8, 16):
                base = simulate_system(SystemKind.ZERO_OFFLOAD, spec, b)
                red = simulate_system(SystemKind.TECO_REDUCTION, spec, b)
                s.append(red.speedup_over(base))
            assert s == sorted(s, reverse=True), spec.name

    def test_11b_saturates(self):
        """Table VI: the 11B model is compute-bound, smallest speedup."""
        speedups = []
        for spec in gpt2_scaling_series():
            base = simulate_system(SystemKind.ZERO_OFFLOAD, spec, 4)
            red = simulate_system(SystemKind.TECO_REDUCTION, spec, 4)
            speedups.append((spec.name, red.speedup_over(base)))
        names = [n for n, _ in speedups]
        values = dict(speedups)
        assert min(values, key=values.get) == "gpt2-11b"
        assert "gpt2-11b" == names[-1]

    def test_comm_overhead_reduction_band(self):
        """Headline: TECO reduces exposed communication by 93.7% on
        average (up to 100%)."""
        reductions = []
        for spec in evaluation_models():
            base = simulate_system(SystemKind.ZERO_OFFLOAD, spec, 4)
            red = simulate_system(SystemKind.TECO_REDUCTION, spec, 4)
            reductions.append(red.comm_overhead_reduction_vs(base))
        avg = sum(reductions) / len(reductions)
        assert avg > 0.80
        assert max(reductions) > 0.95
